"""Set-associative cache and two-level hierarchy."""

import pytest

from repro.config import ProcessorConfig
from repro.proc.cache import Cache
from repro.proc.hierarchy import CacheHierarchy


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(1024, ways=2, line_bytes=64)
        hit, _ = cache.access(5, False)
        assert not hit
        hit, _ = cache.access(5, False)
        assert hit

    def test_lru_eviction(self):
        cache = Cache(2 * 64, ways=2, line_bytes=64)  # one set, two ways
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # 1 is now LRU
        cache.access(2, False)  # evicts 1
        assert cache.access(0, False)[0]
        assert not cache.access(1, False)[0]

    def test_dirty_writeback_address(self):
        cache = Cache(2 * 64, ways=2, line_bytes=64)
        cache.access(0, True)
        cache.access(1, False)
        hit, wb = cache.access(2, False)  # evicts 0, which is dirty
        assert not hit
        assert wb == 0

    def test_clean_eviction_no_writeback(self):
        cache = Cache(2 * 64, ways=2, line_bytes=64)
        cache.access(0, False)
        cache.access(1, False)
        _, wb = cache.access(2, False)
        assert wb is None

    def test_set_mapping(self):
        cache = Cache(4 * 64, ways=1, line_bytes=64)  # 4 sets
        cache.access(0, False)
        cache.access(1, False)  # different set: no conflict
        assert cache.access(0, False)[0]

    def test_install_does_not_count_demand(self):
        cache = Cache(1024, ways=2)
        cache.install(7, dirty=False)
        assert cache.stats.accesses == 0
        assert cache.access(7, False)[0]

    def test_install_dirty_evicts_with_writeback(self):
        cache = Cache(2 * 64, ways=2)
        cache.install(0, dirty=True)
        cache.install(1, dirty=False)
        wb = cache.install(2, dirty=False)
        assert wb == 0

    def test_stats(self):
        cache = Cache(1024, ways=2)
        cache.access(1, False)
        cache.access(1, False)
        cache.access(2, False)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, ways=3, line_bytes=64)

    def test_occupancy(self):
        cache = Cache(1024, ways=2)
        for i in range(5):
            cache.access(i, False)
        assert cache.occupancy() == 5


class TestHierarchy:
    def _refs(self, addresses, write=False):
        return [(2, write, a) for a in addresses]

    def test_l1_absorbs_repeats(self):
        h = CacheHierarchy(ProcessorConfig())
        trace = h.run(self._refs([0] * 100))
        assert trace.l1_hits == 99
        assert trace.llc_misses == 1

    def test_l2_catches_l1_conflicts(self):
        proc = ProcessorConfig()
        h = CacheHierarchy(proc)
        # More lines than L1 holds, fewer than L2: second sweep hits L2/L1.
        lines = (proc.l1_bytes // 64) * 2
        addrs = [i * 64 for i in range(lines)] * 2
        trace = h.run(self._refs(addrs))
        assert trace.llc_misses == lines
        assert trace.l2_hits > 0

    def test_dirty_evictions_become_write_events(self):
        proc = ProcessorConfig()
        h = CacheHierarchy(proc)
        lines = (proc.l2_bytes // 64) * 2
        addrs = [i * 64 for i in range(lines)]
        trace = h.run(self._refs(addrs, write=True))
        assert any(e.is_write for e in trace.events)

    def test_max_misses_stops_early(self):
        h = CacheHierarchy(ProcessorConfig())
        addrs = [i * 64 for i in range(10**6)]
        trace = h.run(self._refs(addrs), max_llc_misses=50)
        assert trace.llc_misses == 50

    def test_warmup_not_recorded(self):
        h = CacheHierarchy(ProcessorConfig())
        addrs = [i * 64 for i in range(1000)]
        trace = h.run(self._refs(addrs * 2), warmup_refs=1000)
        # The second sweep is all L1/L2 hits: no misses recorded.
        assert trace.llc_misses == 0
        assert trace.instructions > 0

    def test_mpki(self):
        h = CacheHierarchy(ProcessorConfig())
        trace = h.run(self._refs([i * 64 for i in range(100)]))
        assert trace.mpki == pytest.approx(
            1000 * trace.llc_misses / trace.instructions
        )
