"""MerkleVerifiedStorage under an unmodified Backend/Frontend."""

import pytest

from repro.backend.ops import Op
from repro.config import OramConfig
from repro.crypto.mac import Mac
from repro.errors import IntegrityViolationError
from repro.frontend.linear import LinearFrontend
from repro.integrity.adapter import MerkleVerifiedStorage
from repro.storage.block import Block
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


def build(num_blocks=2**6):
    config = OramConfig(num_blocks=num_blocks, block_bytes=32)
    mac = Mac(b"adapter-key", mode=Mac.MODE_FAST)
    storage = MerkleVerifiedStorage(TreeStorage(config), mac)
    frontend = LinearFrontend(config, DeterministicRng(3), storage=storage)
    return config, storage, frontend


class TestHonest:
    def test_frontend_works_through_adapter(self):
        config, storage, frontend = build()
        payload = b"\x44" * 32
        frontend.write(5, payload)
        assert frontend.read(5) == payload

    def test_long_random_workload_verifies(self):
        config, storage, frontend = build()
        rng = DeterministicRng(9)
        shadow = {}
        for step in range(300):
            addr = rng.randrange(config.num_blocks)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * 32
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(32))

    def test_hash_cost_is_two_paths_per_access(self):
        config, storage, frontend = build()
        storage.mac.reset_counters()
        frontend.read(3)
        assert storage.mac.call_count == 2 * (config.levels + 1)

    def test_bandwidth_delegated(self):
        config, storage, frontend = build()
        frontend.read(1)
        assert storage.bytes_moved == storage.inner.bytes_moved > 0


class TestTamper:
    def test_direct_bucket_mutation_detected(self):
        config, storage, frontend = build()
        frontend.write(9, b"\x09" * 32)
        rng = DeterministicRng(2)
        for _ in range(30):
            frontend.read(rng.randrange(config.num_blocks))
        # The adversary edits a bucket behind the verifier's back.
        for index in range(config.num_buckets):
            bucket = storage.inner._buckets[index]
            if bucket is not None and len(bucket):
                bucket.blocks[0].data = b"\xFF" * 32
                break
        with pytest.raises(IntegrityViolationError):
            for _ in range(200):
                frontend.read(rng.randrange(config.num_blocks))

    def test_block_injection_detected(self):
        config, storage, frontend = build()
        frontend.write(1, b"\x01" * 32)
        storage.inner.bucket_at(0).add(Block(99, 0, bytes(32)))
        with pytest.raises(IntegrityViolationError):
            frontend.read(1)

    def test_merkle_catches_any_path_tamper_unlike_pmmac(self):
        """Merkle detects tampering of *any* block on the path, not only
        the block of interest — its stronger (and costlier) guarantee."""
        config, storage, frontend = build()
        frontend.write(1, b"\x01" * 32)
        frontend.write(2, b"\x02" * 32)
        rng = DeterministicRng(8)
        for _ in range(30):
            frontend.read(rng.randrange(config.num_blocks))
        # Corrupt whichever real block we find (victim unknown to reader).
        for index in range(config.num_buckets):
            bucket = storage.inner._buckets[index]
            if bucket is not None and len(bucket):
                bucket.blocks[0].data = b"\x7F" * 32
                break
        with pytest.raises(IntegrityViolationError):
            for _ in range(200):
                frontend.read(rng.randrange(config.num_blocks))
