"""§5.4 sub-block frontend: splitting, shared counters, relocation."""

import pytest

from repro.backend.ops import Op
from repro.errors import ConfigurationError
from repro.frontend.subblock import SubBlockFrontend
from repro.utils.rng import DeterministicRng


def make(num_blocks=2**8, data_block_bytes=256, posmap_block_bytes=64,
         beta_bits=14, onchip_entries=2**3):
    return SubBlockFrontend(
        num_blocks=num_blocks,
        data_block_bytes=data_block_bytes,
        posmap_block_bytes=posmap_block_bytes,
        beta_bits=beta_bits,
        onchip_entries=onchip_entries,
        rng=DeterministicRng(44),
    )


class TestStructure:
    def test_sub_block_count(self):
        assert make(data_block_bytes=512, posmap_block_bytes=64).sub_blocks == 8

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            make(data_block_bytes=200, posmap_block_bytes=64)

    def test_tree_stores_small_blocks(self):
        frontend = make(data_block_bytes=512, posmap_block_bytes=64)
        assert frontend.config.block_bytes == 64

    def test_tree_sized_for_all_sub_blocks(self):
        frontend = make(num_blocks=2**8, data_block_bytes=256, posmap_block_bytes=64)
        assert frontend.config.num_blocks >= 2**8 * 4


class TestFunctional:
    def test_write_read_roundtrip(self):
        frontend = make()
        payload = bytes(range(256))
        frontend.write(17, payload)
        assert frontend.read(17) == payload

    def test_fresh_reads_zero(self):
        frontend = make()
        assert frontend.read(200) == bytes(256)

    def test_sub_blocks_reassembled_in_order(self):
        frontend = make(data_block_bytes=256, posmap_block_bytes=64)
        payload = b"".join(bytes([k]) * 64 for k in range(4))
        frontend.write(3, payload)
        got = frontend.read(3)
        for k in range(4):
            assert got[k * 64 : (k + 1) * 64] == bytes([k]) * 64

    def test_shadow_consistency(self):
        frontend = make()
        rng = DeterministicRng(4)
        shadow = {}
        for step in range(120):
            addr = rng.randrange(2**8)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * 256
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(256))

    def test_partial_write_rejected(self):
        with pytest.raises(ValueError):
            make().write(0, b"short")

    def test_stash_bounded(self):
        frontend = make()
        rng = DeterministicRng(5)
        for _ in range(300):
            frontend.read(rng.randrange(2**8))
        assert frontend.backend.stash.occupancy_stats.max <= 40


class TestAccessCost:
    def test_access_count_is_h_plus_subblocks(self):
        """§5.4: H Backend accesses for PosMap + ceil(B/Bp) for data."""
        frontend = make(data_block_bytes=256, posmap_block_bytes=64)
        result = frontend.access(9, Op.READ)
        assert result.tree_accesses == (frontend.num_levels - 1) + 4
        assert result.posmap_tree_accesses == frontend.num_levels - 1

    def test_sub_blocks_share_one_counter_lookup(self):
        """All sub-blocks move under a single counter transition: reading
        twice must keep data intact across full remaps of every piece."""
        frontend = make()
        payload = bytes(range(256))
        frontend.write(5, payload)
        for _ in range(5):
            assert frontend.read(5) == payload


class TestGroupRemapWithSubBlocks:
    def test_rollover_relocates_all_sibling_pieces(self):
        frontend = make(beta_bits=3)
        payloads = {j: bytes([j + 1]) * 256 for j in range(4)}
        for j, payload in payloads.items():
            frontend.write(j, payload)
        for _ in range(2**3 + 2):  # roll the shared IC of block 0
            frontend.read(0)
        assert frontend.stats.group_remaps >= 1
        for j, payload in payloads.items():
            assert frontend.read(j) == payload

    def test_relocations_count_sub_blocks(self):
        frontend = make(beta_bits=3)
        frontend.read(0)
        before = frontend.stats.group_relocations
        for _ in range(2**3 + 1):
            frontend.read(0)
        moved = frontend.stats.group_relocations - before
        # Each touched sibling logical block relocates all its pieces.
        assert moved % frontend.sub_blocks == 0
        assert moved > 0
