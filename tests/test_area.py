"""Area model against Table 3."""

import pytest

from repro.area.model import AreaModel
from repro.eval.table3 import PAPER_TABLE3, layout_total


@pytest.fixture
def model():
    return AreaModel(posmap_kib=8, plb_kib=8, pmmac=True)


class TestSynthesisVsPaper:
    @pytest.mark.parametrize("channels", [1, 2, 4])
    def test_total_within_5_percent(self, model, channels):
        total = model.synthesis(channels).total
        assert total == pytest.approx(PAPER_TABLE3[channels][8], rel=0.05)

    @pytest.mark.parametrize("channels", [1, 2, 4])
    def test_component_percentages_track_paper(self, model, channels):
        measured = model.synthesis(channels).percentages()
        names = ("frontend", "posmap", "plb", "pmmac", "misc", "backend", "stash", "aes")
        for idx, name in enumerate(names):
            assert measured[name] == pytest.approx(
                PAPER_TABLE3[channels][idx], abs=1.5
            ), name

    def test_frontend_share_shrinks_with_channels(self, model):
        """The paper's key scaling point: Frontend cost amortises."""
        shares = [model.synthesis(ch).percentages()["frontend"] for ch in (1, 2, 4)]
        assert shares[2] < shares[0]

    def test_pmmac_below_13_percent(self, model):
        for ch in (1, 2, 4):
            assert model.synthesis(ch).percentages()["pmmac"] <= 13.0

    def test_plb_at_most_10_percent(self, model):
        for ch in (1, 2, 4):
            assert model.synthesis(ch).percentages()["plb"] <= 10.5

    def test_pmmac_off_removes_area(self):
        off = AreaModel(pmmac=False).synthesis(2)
        assert off.pmmac == 0.0

    def test_invalid_channels(self, model):
        with pytest.raises(ValueError):
            model.synthesis(0)


class TestLayout:
    def test_post_layout_total_near_paper(self):
        assert layout_total(2) == pytest.approx(0.47, abs=0.03)

    def test_layout_grows_each_component(self, model):
        synth = model.synthesis(2)
        layout = model.layout(2)
        assert layout.total > synth.total
        assert layout.aes > synth.aes
        assert layout.frontend > synth.frontend


class TestAlternatives:
    def test_no_recursion_posmap_explodes(self, model):
        """§7.2.3: a flat 2^20-entry PosMap costs ~5 mm^2 — >10x total."""
        flat = model.no_recursion_posmap_mm2(2**20, 20)
        assert flat == pytest.approx(5.0, rel=0.1)
        assert flat > 10 * model.synthesis(2).total

    def test_doubling_capacity_doubles_flat_posmap(self, model):
        one = model.no_recursion_posmap_mm2(2**20, 20)
        two = model.no_recursion_posmap_mm2(2**21, 21)
        assert two > 1.9 * one

    def test_64kb_plb_increase(self):
        """§7.2.3: a 64 KB PLB adds ~29% to the 1-channel design."""
        small = AreaModel(plb_kib=8).synthesis(1).total
        big = AreaModel(plb_kib=64).synthesis(1).total
        assert (big - small) / small == pytest.approx(0.29, abs=0.1)
