"""Property: a mid-access fault is an exact no-op on ORAM state.

Whatever the access sequence, whatever the faulted operation, and
whichever storage backend holds the tree, an exception raised in the
middle of ``Backend.access`` must leave the stash snapshot and the tree
digest at their exact pre-access values — and the backend must keep
working afterwards. The fault is delivered through the ``repro.faults``
plane (a ``cell.crash`` plan fired from the in-stash ``update``
callback, the deepest point of an access: the leaf is already remapped
and every path bucket drained).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.path_oram import Op, make_backend
from repro.config import OramConfig
from repro.errors import InjectedFault
from repro.faults import fault_hook, injected
from repro.storage.array_tree import ArrayTreeStorage
from repro.storage.columnar import ColumnarTreeStorage
from repro.storage.snapshot import tree_digest
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng

STORAGES = [
    pytest.param(TreeStorage, id="object"),
    pytest.param(ArrayTreeStorage, id="array"),
    pytest.param(ColumnarTreeStorage, id="columnar"),
]

#: Warmup writes stay below this; the faulted access may go above it so
#: the created-fresh (block absent from tree and stash) path is covered.
WARM_ADDRS = 32


def _build(storage_cls, seed, warmup):
    config = OramConfig(num_blocks=64, block_bytes=16)
    backend = make_backend(config, storage_cls(config), DeterministicRng(seed))
    rng = DeterministicRng(seed ^ 0x5EED)
    posmap = {}
    for step, addr in enumerate(warmup):
        new_leaf = rng.random_leaf(config.levels)

        def update(block, step=step):
            block.data = bytes([step % 256]) * config.block_bytes

        backend.access(Op.WRITE, addr, posmap.get(addr, 0), new_leaf,
                       update=update)
        posmap[addr] = new_leaf
    return backend, rng, posmap


class TestMidAccessFaultIsExactNoop:
    @pytest.mark.parametrize("storage_cls", STORAGES)
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        warmup=st.lists(
            st.integers(min_value=0, max_value=WARM_ADDRS - 1), max_size=40
        ),
        fault_addr=st.integers(min_value=0, max_value=63),
        fault_op=st.sampled_from([Op.READ, Op.WRITE, Op.READRMV]),
    )
    def test_fault_mid_access_restores_pre_access_snapshot(
        self, storage_cls, seed, warmup, fault_addr, fault_op
    ):
        backend, rng, posmap = _build(storage_cls, seed, warmup)
        config = backend.config

        before_stash = backend.stash_snapshot()
        before_tree = tree_digest(backend.storage)
        before_appends = backend.append_count

        def bomb(block):
            fault_hook("cell", "prop/mid-access")

        with injected("cell.crash@prop/*"):
            with pytest.raises(InjectedFault):
                backend.access(
                    fault_op,
                    fault_addr,
                    posmap.get(fault_addr, 0),
                    rng.random_leaf(config.levels),
                    update=bomb,
                )

        assert backend.stash_snapshot() == before_stash
        assert tree_digest(backend.storage) == before_tree
        assert backend.append_count == before_appends

        # The backend stays usable: a normal access to a warmed address
        # (or a fresh allocation when the warmup was empty) succeeds.
        probe = warmup[0] if warmup else 0
        new_leaf = rng.random_leaf(config.levels)
        got = backend.access(Op.READ, probe, posmap.get(probe, 0), new_leaf)
        assert got is not None and got.addr == probe

    @pytest.mark.parametrize("storage_cls", STORAGES)
    def test_faulted_then_healed_run_matches_fault_free_golden(
        self, storage_cls
    ):
        """Retrying the faulted access converges to the fault-free state:
        the sequence (access, fault, retry-same-access) leaves the exact
        stash and tree of a run that never faulted."""
        warmup = [addr % WARM_ADDRS for addr in range(24)]
        golden, g_rng, g_posmap = _build(storage_cls, 11, warmup)
        chaos, c_rng, c_posmap = _build(storage_cls, 11, warmup)
        assert g_posmap == c_posmap

        addr = warmup[3]
        new_leaf = g_rng.random_leaf(golden.config.levels)
        assert new_leaf == c_rng.random_leaf(chaos.config.levels)

        def touch(block):
            block.data = b"\xab" * golden.config.block_bytes

        golden.access(Op.WRITE, addr, g_posmap[addr], new_leaf, update=touch)

        def faulty(block):
            fault_hook("cell", "prop/retry")
            touch(block)

        with injected("cell.crash@prop/*#1"):
            with pytest.raises(InjectedFault):
                chaos.access(
                    Op.WRITE, addr, c_posmap[addr], new_leaf, update=faulty
                )
            # Same plan still installed — hit #1 already consumed, so the
            # retry goes through, exactly like the sweep's retry loop.
            chaos.access(
                Op.WRITE, addr, c_posmap[addr], new_leaf, update=faulty
            )

        assert chaos.stash_snapshot() == golden.stash_snapshot()
        assert tree_digest(chaos.storage) == tree_digest(golden.storage)
