"""ArrayTreeStorage: geometry, accounting and TreeStorage equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import OramConfig
from repro.storage.array_tree import (
    ArrayTreeStorage,
    default_storage_backend,
    make_storage,
    make_storage_factory,
)
from repro.storage.block import Block
from repro.storage.tree import TreeStorage


class TestGeometry:
    @settings(max_examples=60, deadline=None)
    @given(
        levels=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    def test_path_indices_match_tree_storage(self, levels, data):
        config = OramConfig(num_blocks=1 << (levels + 1), block_bytes=32)
        assert config.levels == levels
        obj = TreeStorage(config)
        arr = ArrayTreeStorage(config)
        leaf = data.draw(st.integers(min_value=0, max_value=config.num_leaves - 1))
        assert arr.path_indices(leaf) == obj.path_indices(leaf)

    def test_out_of_range_leaf_rejected(self):
        config = OramConfig(num_blocks=64, block_bytes=32)
        arr = ArrayTreeStorage(config)
        for leaf in (-1, config.num_leaves):
            with pytest.raises(ValueError):
                arr.path_indices(leaf)
            with pytest.raises(ValueError):
                arr.read_path_buckets(leaf)

    def test_lazy_geometry_fallback_matches(self, monkeypatch):
        """The on-demand row computation equals the vectorised table."""
        import repro.storage.array_tree as mod

        config = OramConfig(num_blocks=256, block_bytes=32)
        eager = ArrayTreeStorage(config)
        monkeypatch.setattr(mod, "EAGER_GEOMETRY_LEAVES", 0)
        lazy = ArrayTreeStorage(config)
        assert lazy._geometry is None
        for leaf in range(config.num_leaves):
            assert lazy.path_indices(leaf) == eager.path_indices(leaf)


class TestOperations:
    @pytest.fixture
    def config(self):
        return OramConfig(num_blocks=128, block_bytes=32)

    def test_read_path_returns_shared_cached_list(self, config):
        arr = ArrayTreeStorage(config)
        first = arr.read_path_buckets(3)
        second = arr.read_path_buckets(3)
        assert first is second
        assert len(first) == config.levels + 1

    def test_bucket_mutations_persist(self, config):
        arr = ArrayTreeStorage(config)
        path = arr.read_path_buckets(0)
        path[0].add(Block(7, 0, b"x" * 32))
        assert arr.occupancy() == 1
        assert arr.read_path_buckets(0)[0].find(7) is not None

    def test_bandwidth_accounting_matches_tree_storage(self, config):
        obj, arr = TreeStorage(config), ArrayTreeStorage(config)
        for storage in (obj, arr):
            storage.read_path_buckets(1)
            storage.write_path(1)
            storage.read_path(5)
        assert arr.buckets_read == obj.buckets_read
        assert arr.buckets_written == obj.buckets_written
        assert arr.bytes_moved == obj.bytes_moved
        arr.reset_counters()
        assert arr.bytes_moved == 0

    def test_observer_sees_identical_traffic(self, config):
        class Recorder:
            def __init__(self):
                self.events = []

            def on_path_read(self, leaf, indices):
                self.events.append(("r", leaf, tuple(indices)))

            def on_path_write(self, leaf, indices):
                self.events.append(("w", leaf, tuple(indices)))

        a, b = Recorder(), Recorder()
        obj = TreeStorage(config, observer=a)
        arr = ArrayTreeStorage(config, observer=b)
        for storage in (obj, arr):
            storage.read_path_buckets(2)
            storage.write_path(2)
            storage.read_path_buckets(9)
        assert a.events == b.events


class TestSelection:
    def test_make_storage_dispatch(self):
        config = OramConfig(num_blocks=64, block_bytes=32)
        assert isinstance(make_storage("object", config), TreeStorage)
        assert isinstance(make_storage("array", config), ArrayTreeStorage)
        with pytest.raises(ValueError):
            make_storage("quantum", config)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        assert default_storage_backend() == "object"
        monkeypatch.setenv("REPRO_STORAGE", "array")
        assert default_storage_backend() == "array"

    def test_factory_resolves_env_at_call_time(self, monkeypatch):
        config = OramConfig(num_blocks=64, block_bytes=32)
        factory = make_storage_factory(None)
        monkeypatch.setenv("REPRO_STORAGE", "array")
        assert isinstance(factory(config, None), ArrayTreeStorage)
        monkeypatch.setenv("REPRO_STORAGE", "object")
        assert isinstance(factory(config, None), TreeStorage)

    def test_preset_kwarg_selects_backend(self):
        from repro.presets import build_frontend

        frontend = build_frontend("PC_X32", num_blocks=2**10, storage="array")
        assert isinstance(frontend.backend.storage, ArrayTreeStorage)
        frontend = build_frontend("PC_X32", num_blocks=2**10)
        assert isinstance(frontend.backend.storage, TreeStorage)

    def test_env_selects_backend_for_presets(self, monkeypatch):
        from repro.presets import build_frontend

        monkeypatch.setenv("REPRO_STORAGE", "array")
        frontend = build_frontend("P_X16", num_blocks=2**10)
        assert isinstance(frontend.backend.storage, ArrayTreeStorage)
        recursive = build_frontend("R_X8", num_blocks=2**10)
        assert all(
            isinstance(b.storage, ArrayTreeStorage) for b in recursive.backends
        )
