"""Unit tests for repro.utils.rng."""

from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random_leaf(10) for _ in range(50)] == [
            b.random_leaf(10) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random_leaf(20) for _ in range(20)] != [
            b.random_leaf(20) for _ in range(20)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random_bytes(16) == b.random_bytes(16)

    def test_fork_independent_of_parent_use(self):
        parent1 = DeterministicRng(7)
        parent1.random()
        parent2 = DeterministicRng(7)
        assert parent1.fork(5).randrange(1000) == parent2.fork(5).randrange(1000)

    def test_forks_with_different_salts_differ(self):
        parent = DeterministicRng(7)
        assert parent.fork(1).random_bytes(8) != parent.fork(2).random_bytes(8)


class TestRanges:
    def test_random_leaf_in_range(self):
        rng = DeterministicRng(0)
        for _ in range(500):
            assert 0 <= rng.random_leaf(6) < 64

    def test_random_leaf_zero_levels(self):
        assert DeterministicRng(0).random_leaf(0) == 0

    def test_random_bytes_length(self):
        rng = DeterministicRng(0)
        assert len(rng.random_bytes(33)) == 33
        assert rng.random_bytes(0) == b""

    def test_zipf_in_range(self):
        rng = DeterministicRng(0)
        for alpha in (0.5, 1.0, 1.5):
            for _ in range(200):
                assert 0 <= rng.zipf(100, alpha) < 100

    def test_zipf_trivial_n(self):
        assert DeterministicRng(0).zipf(1, 1.0) == 0

    def test_zipf_is_skewed(self):
        """Low ranks should dominate a Zipf sample."""
        rng = DeterministicRng(3)
        draws = [rng.zipf(1000, 1.2) for _ in range(3000)]
        low = sum(1 for d in draws if d < 100)
        assert low > len(draws) // 2

    def test_leaf_roughly_uniform(self):
        rng = DeterministicRng(9)
        counts = [0] * 16
        for _ in range(16000):
            counts[rng.random_leaf(4)] += 1
        assert min(counts) > 750 and max(counts) < 1250
