"""Golden-digest equivalence: optimized hot paths vs seed implementations.

The replay-throughput overhaul (indexed PLB, cached/packed PRF leaf
derivation, windowed compressed-counter remap, array tree storage, fused
backend eviction) must be *performance-only*: every observable result is
required to be bitwise identical to the original implementations. These
tests pin that down three ways:

1. primitive-level: reference implementations transcribed from the seed
   (linear-scan PLB, three-way-concat PRF message, whole-block compressed
   remap) are driven with identical inputs;
2. configuration-level: the same replay executed with the optimizations'
   toggles flipped (PRF cache off, object vs array storage) must produce
   dataclass-equal SimResults;
3. digest-level: SimResults are serialised and SHA-256 hashed, so any
   drift in any field — including float bit patterns — fails loudly.
"""

import dataclasses
import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf
from repro.frontend.addrgen import AddressSpace
from repro.frontend.formats import CompressedPosMapFormat
from repro.frontend.plb import Plb, PlbEntry
from repro.presets import build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.utils.rng import DeterministicRng

KEY = b"equivalence-key!"


def result_digest(result) -> str:
    """SHA-256 of the canonical JSON image of a SimResult.

    Only comparable fields participate: dataclass fields marked
    ``compare=False`` (diagnostic counters like ``prf_cache_hits``, which
    legitimately vary when an optimization toggle flips) are excluded, so
    the digest — like ``==`` — pins the simulated outcome.
    """
    payload = json.dumps(
        {
            f.name: getattr(result, f.name)
            for f in dataclasses.fields(result)
            if f.compare
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def micro_trace(events: int = 2500, blocks: int = 2**12) -> MissTrace:
    rng = DeterministicRng(8)
    trace = MissTrace(
        name="micro", instructions=200_000, mem_refs=60_000,
        l1_hits=50_000, l2_hits=8_000,
    )
    trace.events = [
        MissEvent(rng.randrange(blocks), rng.random() < 0.3) for _ in range(events)
    ]
    return trace


def replay(scheme: str, *, storage: str = "object", crypto=None) -> tuple:
    frontend = build_frontend(
        scheme, num_blocks=2**12, rng=DeterministicRng(7),
        storage=storage, **({"crypto": crypto} if crypto is not None else {}),
    )
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    result = replay_trace(frontend, micro_trace(), timing, scheme=scheme)
    return result, result_digest(result)


# -- 1. primitive-level references ------------------------------------------------


def reference_leaf_for(key: bytes, address: int, count: int, num_levels: int,
                       subblock: int = 0) -> int:
    """The seed's leaf derivation: three to_bytes concatenations, no cache."""
    if num_levels <= 0:
        return 0
    message = (
        address.to_bytes(8, "little")
        + count.to_bytes(12, "little")
        + subblock.to_bytes(4, "little")
    )
    digest = hashlib.blake2b(message, key=key, digest_size=16).digest()
    return int.from_bytes(digest, "little") & ((1 << num_levels) - 1)


class TestPrfEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        address=st.integers(min_value=0, max_value=2**52),
        count=st.integers(min_value=0, max_value=2**80),
        num_levels=st.integers(min_value=1, max_value=32),
        subblock=st.integers(min_value=0, max_value=2**20),
    )
    def test_packed_message_matches_seed_bytes(
        self, address, count, num_levels, subblock
    ):
        prf = Prf(KEY)
        assert prf.leaf_for(address, count, num_levels, subblock) == \
            reference_leaf_for(KEY, address, count, num_levels, subblock)

    def test_cache_hit_returns_same_leaf(self):
        prf = Prf(KEY)
        cold = [prf.leaf_for(9, c, 20) for c in range(200)]
        warm = [prf.leaf_for(9, c, 20) for c in range(200)]
        assert warm == cold
        assert prf.cache_hits == 200

    def test_call_count_counts_logical_evaluations(self):
        """Cache hits still count as PRF calls (bandwidth accounting)."""
        prf = Prf(KEY)
        prf.leaf_for(1, 1, 16)
        prf.leaf_for(1, 1, 16)  # served from cache
        assert prf.call_count == 2
        assert prf.cache_hits == 1

    def test_cache_disabled_still_correct(self):
        cached, uncached = Prf(KEY), Prf(KEY, leaf_cache_entries=0)
        for c in (0, 1, 1, 2, 0):
            assert cached.leaf_for(5, c, 18) == uncached.leaf_for(5, c, 18)
        assert uncached.cache_hits == 0
        assert cached.call_count == uncached.call_count

    def test_cache_bounded(self):
        prf = Prf(KEY, leaf_cache_entries=16)
        for c in range(100):
            prf.leaf_for(1, c, 16)
        assert len(prf._leaf_cache) <= 16

    def test_lru_evicts_oldest(self):
        prf = Prf(KEY, leaf_cache_entries=2)
        prf.leaf_for(1, 0, 16)
        prf.leaf_for(1, 1, 16)
        prf.leaf_for(1, 0, 16)  # refresh 0: now 1 is the LRU victim
        prf.leaf_for(1, 2, 16)  # evicts 1
        assert (1, 0, 16, 0) in prf._leaf_cache
        assert (1, 1, 16, 0) not in prf._leaf_cache


class ReferencePlb:
    """The seed's linear-scan PLB (set lists only, no tag index)."""

    def __init__(self, capacity_bytes, block_bytes, ways=1):
        total = (capacity_bytes // block_bytes)
        total -= total % ways
        self.ways = ways
        self.num_sets = total // ways
        self._sets = [[] for _ in range(self.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _set_index(self, tagged_addr):
        level = tagged_addr >> 48
        index = tagged_addr & ((1 << 48) - 1)
        return (index + level * 7919) % self.num_sets

    def lookup(self, tagged_addr):
        self._clock += 1
        for entry in self._sets[self._set_index(tagged_addr)]:
            if entry.tagged_addr == tagged_addr:
                entry.last_use = self._clock
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def insert(self, entry):
        self._clock += 1
        entry.last_use = self._clock
        bucket = self._sets[self._set_index(entry.tagged_addr)]
        if len(bucket) < self.ways:
            bucket.append(entry)
            return None
        victim_pos = min(range(len(bucket)), key=lambda i: bucket[i].last_use)
        victim = bucket[victim_pos]
        bucket[victim_pos] = entry
        return victim

    def invalidate(self, tagged_addr):
        bucket = self._sets[self._set_index(tagged_addr)]
        for pos, entry in enumerate(bucket):
            if entry.tagged_addr == tagged_addr:
                return bucket.pop(pos)
        return None


class TestPlbEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        ways=st.sampled_from([1, 2, 4]),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["lookup", "insert", "invalidate"]),
                st.integers(min_value=0, max_value=3),   # level
                st.integers(min_value=0, max_value=40),  # index
            ),
            min_size=1,
            max_size=120,
        ),
    )
    def test_indexed_plb_matches_linear_scan(self, ways, ops):
        new = Plb(capacity_bytes=8 * 64, block_bytes=64, ways=ways)
        ref = ReferencePlb(capacity_bytes=8 * 64, block_bytes=64, ways=ways)
        for op, level, index in ops:
            tag = AddressSpace.tag(level, index)
            if op == "lookup":
                a, b = new.lookup(tag), ref.lookup(tag)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.tagged_addr == b.tagged_addr
            elif op == "insert":
                entry_new = PlbEntry(tag, bytearray(64), leaf=index)
                entry_ref = PlbEntry(tag, bytearray(64), leaf=index)
                try:
                    va = new.insert(entry_new)
                except ValueError:
                    continue  # duplicate: reference would scan and keep both
                vb = ref.insert(entry_ref)
                assert (va is None) == (vb is None)
                if va is not None:
                    assert va.tagged_addr == vb.tagged_addr
            else:
                ra, rb = new.invalidate(tag), ref.invalidate(tag)
                assert (ra is None) == (rb is None)
            assert (new.hits, new.misses) == (ref.hits, ref.misses)
            assert len(new) == sum(len(s) for s in ref._sets)


def reference_compressed_remap(fmt, data: bytearray, slot: int):
    """The seed's whole-block-integer remap; returns the RemapResult tuple
    image (old/new counters and the final block bytes)."""
    value = int.from_bytes(bytes(data), "little")
    gc = value & ((1 << fmt.alpha_bits) - 1)
    ic_shift = fmt.alpha_bits + slot * fmt.beta_bits
    ic = (value >> ic_shift) & fmt._ic_mask
    old_counter = (gc << fmt.beta_bits) | ic
    if ic < fmt._ic_mask:
        new_value = value + (1 << ic_shift)
        new_counter = old_counter + 1
    else:
        new_value = gc + 1
        new_counter = (gc + 1) << fmt.beta_bits
    return old_counter, new_counter, new_value.to_bytes(fmt.block_bytes, "little")


class TestCompressedRemapEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        payload=st.binary(min_size=64, max_size=64),
        slot=st.integers(min_value=0, max_value=31),
    )
    def test_windowed_update_matches_whole_block(self, payload, slot):
        prf = Prf(KEY)
        fmt = CompressedPosMapFormat(64, 20, prf)
        data = bytearray(payload)
        expect_old, expect_new, expect_bytes = reference_compressed_remap(
            fmt, bytearray(payload), slot
        )
        result = fmt.remap(data, slot, child_addr=slot, rng=DeterministicRng(0))
        assert result.old_counter == expect_old
        assert result.new_counter == expect_new
        assert bytes(data) == expect_bytes

    def test_rollover_still_group_remaps(self):
        prf = Prf(KEY)
        fmt = CompressedPosMapFormat(64, 20, prf)
        data = bytearray(fmt.initial_block())
        # Saturate slot 3's IC, then remap once more to trigger rollover.
        for _ in range(fmt._ic_mask):
            fmt.remap(data, 3, child_addr=3, rng=DeterministicRng(0))
        result = fmt.remap(data, 3, child_addr=3, rng=DeterministicRng(0))
        assert result.group_remap_slots  # every sibling relocated
        assert fmt.group_counter(bytes(data)) == 1
        assert fmt.individual_counter(bytes(data), 3) == 0


# -- 2/3. configuration- and digest-level equivalence -----------------------------


ALL_SCHEMES = ["R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32"]


class TestReplayEquivalence:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_array_storage_bitwise_identical(self, scheme):
        obj_result, obj_digest = replay(scheme, storage="object")
        arr_result, arr_digest = replay(scheme, storage="array")
        assert obj_result == arr_result
        assert obj_digest == arr_digest

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_columnar_storage_bitwise_identical(self, scheme):
        """Golden digests for storage=columnar: slot arena == object tree."""
        obj_result, obj_digest = replay(scheme, storage="object")
        col_result, col_digest = replay(scheme, storage="columnar")
        assert obj_result == col_result
        assert obj_digest == col_digest

    @pytest.mark.parametrize("scheme", ["P_X16", "PIC_X32"])
    def test_columnar_final_tree_contents_identical(self, scheme):
        """Beyond SimResults: the full end-of-replay tree state matches."""
        from repro.storage.snapshot import tree_digest

        trees = {}
        for storage in ("object", "array", "columnar"):
            frontend = build_frontend(
                scheme, num_blocks=2**12, rng=DeterministicRng(7), storage=storage
            )
            replay_trace(
                frontend,
                micro_trace(),
                OramTimingModel(tree_latency_cycles=1000.0),
                scheme=scheme,
            )
            trees[storage] = tree_digest(frontend.backend.storage)
        assert trees["object"] == trees["array"] == trees["columnar"]

    def test_columnar_spec_string_build(self):
        """The spec mini-language selects the columnar pair end to end."""
        from repro.backend.columnar import ColumnarPathOramBackend
        from repro.spec import SchemeSpec
        from repro.storage.columnar import ColumnarTreeStorage

        frontend = SchemeSpec.from_string(
            "PC_X32:storage=columnar"
        ).with_(num_blocks=2**10).build(rng=DeterministicRng(7))
        assert isinstance(frontend.backend, ColumnarPathOramBackend)
        assert isinstance(frontend.backend.storage, ColumnarTreeStorage)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_batched_replay_kernel_bitwise_identical(self, scheme):
        """Golden digests for every replay kernel (``REPRO_REPLAY``):
        scalar, batched and compiled (which degrades to batched with a
        warning when the extension is unbuilt) must produce the same
        SimResult and the same digest."""
        frontends = {
            mode: build_frontend(
                scheme, num_blocks=2**12, rng=DeterministicRng(7)
            )
            for mode in ("scalar", "batched", "compiled")
        }
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        results = {
            mode: replay_trace(
                frontend, micro_trace(), timing, scheme=scheme, mode=mode
            )
            for mode, frontend in frontends.items()
        }
        assert results["scalar"] == results["batched"]
        assert results["compiled"] == results["batched"]
        assert result_digest(results["scalar"]) == result_digest(results["batched"])
        assert result_digest(results["compiled"]) == result_digest(results["batched"])

    @pytest.mark.parametrize("scheme", ["P_X16", "PIC_X32"])
    def test_batched_replay_final_tree_contents_identical(self, scheme):
        from repro.storage.snapshot import tree_digest

        trees = {}
        for mode in ("scalar", "batched", "compiled"):
            frontend = build_frontend(
                scheme, num_blocks=2**12, rng=DeterministicRng(7)
            )
            replay_trace(
                frontend,
                micro_trace(),
                OramTimingModel(tree_latency_cycles=1000.0),
                scheme=scheme,
                mode=mode,
            )
            trees[mode] = tree_digest(frontend.backend.storage)
        assert trees["scalar"] == trees["batched"] == trees["compiled"]

    @pytest.mark.parametrize("scheme", ["PC_X32", "PI_X8", "PIC_X32"])
    def test_prf_cache_bitwise_identical(self, scheme):
        from repro.crypto.suite import CryptoSuite

        cached = CryptoSuite.fast()
        uncached = CryptoSuite.fast()
        uncached.prf._leaf_cache_limit = 0
        with_cache, digest_a = replay(scheme, crypto=cached)
        without_cache, digest_b = replay(scheme, crypto=uncached)
        assert uncached.prf.cache_hits == 0
        assert cached.prf.cache_hits > 0  # the optimization actually engaged
        assert with_cache == without_cache
        assert digest_a == digest_b

    def test_prf_call_count_identical_with_and_without_cache(self):
        """Hash-bandwidth accounting is cache-invariant."""
        from repro.crypto.suite import CryptoSuite

        counts = []
        for limit in (1 << 16, 0):
            crypto = CryptoSuite.fast()
            crypto.prf._leaf_cache_limit = limit
            replay("PIC_X32", crypto=crypto)
            counts.append(crypto.prf.call_count)
        assert counts[0] == counts[1]


# -- 4. declarative specs vs the legacy construction path -------------------------
#
# The SchemeSpec layer re-expresses every preset as data; these goldens pin
# the acceptance criterion that spec-built frontends are *bit-identical* to
# the historical construction. The references below are transcribed from
# the seed's presets.py — direct frontend constructor calls with the
# factories' literal keyword arguments — NOT routed through build_frontend,
# so the comparison stays meaningful now that the factories themselves are
# spec-backed wrappers.


def reference_legacy_build(scheme: str, num_blocks: int, rng):
    """Seed-preset construction, inlined (no spec layer anywhere)."""
    from repro.frontend.recursive import RecursiveFrontend
    from repro.frontend.unified import PlbFrontend

    if scheme == "R_X8":
        return RecursiveFrontend(
            num_blocks=num_blocks,
            data_block_bytes=64,
            posmap_block_bytes=32,
            blocks_per_bucket=4,
            onchip_entries=2**11,
            rng=rng,
        )
    if scheme == "PC_X64":
        return PlbFrontend(
            num_blocks=num_blocks,
            block_bytes=128,
            blocks_per_bucket=3,
            plb_capacity_bytes=64 * 1024,
            onchip_entries=2**11,
            posmap_format="compressed",
            pmmac=False,
            rng=rng,
        )
    posmap_format, pmmac = {
        "P_X16": ("uncompressed", False),
        "PC_X32": ("compressed", False),
        "PI_X8": ("flat", True),
        "PIC_X32": ("compressed", True),
    }[scheme]
    return PlbFrontend(
        num_blocks=num_blocks,
        block_bytes=64,
        blocks_per_bucket=4,
        plb_capacity_bytes=64 * 1024,
        plb_ways=1,
        onchip_entries=2**11,
        posmap_format=posmap_format,
        pmmac=pmmac,
        rng=rng,
    )


SIX_PRESETS = ["R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32", "PC_X64"]


class TestSpecVsLegacyGolden:
    @pytest.mark.parametrize("scheme", SIX_PRESETS)
    def test_spec_build_bitwise_identical_to_seed_factories(self, scheme):
        from repro.spec import get_spec

        timing = OramTimingModel(tree_latency_cycles=1000.0)
        legacy = reference_legacy_build(scheme, 2**12, DeterministicRng(7))
        legacy_result = replay_trace(legacy, micro_trace(), timing, scheme=scheme)
        spec_built = get_spec(scheme).with_(num_blocks=2**12).build(
            rng=DeterministicRng(7)
        )
        spec_result = replay_trace(spec_built, micro_trace(), timing, scheme=scheme)
        assert spec_result == legacy_result
        assert result_digest(spec_result) == result_digest(legacy_result)

    @pytest.mark.parametrize("scheme", SIX_PRESETS)
    def test_wrapper_factories_route_through_specs_unchanged(self, scheme):
        """build_frontend (now spec-backed) still equals the seed path."""
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        legacy = reference_legacy_build(scheme, 2**12, DeterministicRng(7))
        legacy_result = replay_trace(legacy, micro_trace(), timing, scheme=scheme)
        wrapped = build_frontend(scheme, num_blocks=2**12, rng=DeterministicRng(7))
        wrapped_result = replay_trace(wrapped, micro_trace(), timing, scheme=scheme)
        assert result_digest(wrapped_result) == result_digest(legacy_result)

    def test_phantom_spec_matches_direct_construction(self):
        """The linear (Phantom) spec is functionally the seed preset."""
        from repro.config import OramConfig
        from repro.frontend.linear import LinearFrontend
        from repro.spec import get_spec

        cfg = OramConfig(num_blocks=2**6, block_bytes=4096, blocks_per_bucket=4)
        legacy = LinearFrontend(cfg, DeterministicRng(2))
        spec_built = get_spec("phantom_4kb").with_(num_blocks=2**6).build(
            rng=DeterministicRng(2)
        )
        payload = b"\x5a" * 4096
        for frontend in (legacy, spec_built):
            frontend.write(5, payload)
        assert legacy.read(5) == spec_built.read(5) == payload
        assert legacy.posmap.entries == spec_built.posmap.entries
