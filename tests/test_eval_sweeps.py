"""Saved figure sweeps must regenerate the legacy eval tables exactly.

Each fig5/fig7/fig8 module hand-rolls a loop of ``run_one`` calls; the
saved :class:`~repro.sim.sweep.SweepSpec` path re-expresses the same
grid declaratively. These tests run both on small miss budgets and
require *float-equal* tables — the sweeps are re-expressions, not
approximations (both paths replay the identical cached traces with
identically-sized specs, so the arithmetic is bit-for-bit shared).
"""

from __future__ import annotations

import pytest

from repro.eval import fig5, fig7, fig8, sweeps
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import run_sweep

MISSES = 400


class TestFig5Sweep:
    def test_saved_sweep_regenerates_legacy_table(self):
        capacities = (8 * 1024, 32 * 1024)
        legacy = fig5.run(benchmarks=["gob"], capacities=capacities, misses=MISSES)
        report = run_sweep(
            sweeps.fig5_sweep(benchmarks=["gob"], capacities=capacities),
            SimulationRunner(misses_per_benchmark=MISSES),
            include_baselines=False,
        )
        assert sweeps.fig5_table_from_report(report, capacities) == legacy

    def test_sweep_spec_grid_matches_figure(self):
        sweep = sweeps.fig5_sweep()
        assert sweep.grid == (("plb_capacity_bytes", fig5.CAPACITIES),)
        assert [label for label, _spec in sweep.points()] == [
            f"PC_X32:plb_capacity_bytes={capacity}"
            for capacity in fig5.CAPACITIES
        ]


class TestFig7Sweep:
    def test_rates_from_report_match_inline_measurement(self):
        names = ["gob"]
        report = run_sweep(
            sweeps.fig7_sweep(benchmarks=names),
            SimulationRunner(misses_per_benchmark=MISSES),
            include_baselines=False,
        )
        from_report = sweeps.fig7_rates_from_report(report)
        inline = {
            scheme: fig7.measure_posmap_rate(scheme, names, MISSES)
            for scheme in fig7.PLB_SCHEMES
        }
        assert from_report == inline

    def test_bars_from_injected_rates_match_legacy(self):
        names = ["gob"]
        report = run_sweep(
            sweeps.fig7_sweep(benchmarks=names),
            SimulationRunner(misses_per_benchmark=MISSES),
            include_baselines=False,
        )
        via_sweep = fig7.run(rates=sweeps.fig7_rates_from_report(report))
        legacy = fig7.run(benchmarks=names, misses=MISSES)
        assert via_sweep == legacy


class TestFig8Sweep:
    def test_saved_sweep_regenerates_legacy_slowdowns(self):
        names = ["gob"]
        legacy_table, _traffic = fig8.run(benchmarks=names, misses=MISSES)
        report = run_sweep(
            sweeps.fig8_sweep(benchmarks=names),
            sweeps.fig8_runner(MISSES),
        )
        table = sweeps.fig8_table_from_report(report)
        assert table == legacy_table

    def test_runner_matches_paper_platform(self):
        runner = sweeps.fig8_runner(123)
        assert runner.proc.line_bytes == 128
        assert runner.proc.core_ghz == 2.6
        assert runner.dram.channels == 4
        assert runner.misses == 123


class TestRegistry:
    def test_saved_sweeps_discoverable(self):
        assert sweeps.saved_sweep_names() == ["fig5", "fig7", "fig8"]
        for name in sweeps.saved_sweep_names():
            sweep = sweeps.SAVED_SWEEPS[name]()
            assert sweep.points(), name
