"""ColumnarTreeStorage / ColumnarStash / backend-factory unit tests.

The differential harness (``test_columnar_differential.py``) proves
whole-system bit-identity; these tests pin the columnar layer's own
contracts — slot arena management, geometry, accounting, observer
parity, the bucket-object compatibility path, and backend dispatch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.columnar import ColumnarPathOramBackend
from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend, make_backend
from repro.backend.stash import ColumnarStash
from repro.config import OramConfig
from repro.errors import StashOverflowError
from repro.storage.block import Block
from repro.storage.columnar import CHUNK_SLOTS, ColumnarTreeStorage
from repro.storage.snapshot import tree_digest, tree_records
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


class TestSlotArena:
    @pytest.fixture
    def store(self):
        return ColumnarTreeStorage(OramConfig(num_blocks=128, block_bytes=32))

    def test_alloc_roundtrip(self, store):
        slot = store.alloc(7, 3, b"\xAB" * 32, b"m" * 4)
        block = store.block_at_slot(slot)
        assert (block.addr, block.leaf, block.data, block.mac) == (
            7, 3, b"\xAB" * 32, b"m" * 4,
        )

    def test_alloc_zero_payload_default(self, store):
        slot = store.alloc(1, 0)
        assert store.payload(slot) == bytes(32)

    def test_released_slot_is_recycled_and_rezeroed_on_alloc(self, store):
        slot = store.alloc(1, 0, b"\xFF" * 32)
        store.release(slot)
        again = store.alloc(2, 0)
        assert again == slot
        assert store.payload(again) == bytes(32)

    def test_arena_grows_beyond_one_chunk(self, store):
        slots = [store.alloc(i, 0) for i in range(CHUNK_SLOTS + 10)]
        assert len(set(slots)) == len(slots)
        assert store.block_at_slot(slots[-1]).addr == CHUNK_SLOTS + 9

    def test_set_payload_validates_length(self, store):
        slot = store.alloc(1, 0)
        with pytest.raises(ValueError, match="payload must be"):
            store.set_payload(slot, b"short")

    def test_find_block(self, store):
        backend = ColumnarPathOramBackend(store.config, store, DeterministicRng(1))
        backend.access(Op.WRITE, 5, 0, 3)
        located = store.find_block(5)
        assert located is not None
        index, slot = located
        assert store.addr_col[slot] == 5
        assert slot in store.buckets[index]
        assert store.find_block(999) is None


class TestGeometryAndAccounting:
    @pytest.fixture
    def config(self):
        return OramConfig(num_blocks=128, block_bytes=32)

    @settings(max_examples=40, deadline=None)
    @given(levels=st.integers(min_value=1, max_value=12), data=st.data())
    def test_path_indices_match_tree_storage(self, levels, data):
        config = OramConfig(num_blocks=1 << (levels + 1), block_bytes=32)
        obj, col = TreeStorage(config), ColumnarTreeStorage(config)
        leaf = data.draw(st.integers(min_value=0, max_value=config.num_leaves - 1))
        assert col.path_indices(leaf) == obj.path_indices(leaf)

    def test_out_of_range_leaf_rejected(self, config):
        col = ColumnarTreeStorage(config)
        for leaf in (-1, config.num_leaves):
            with pytest.raises(ValueError):
                col.path_indices(leaf)
            with pytest.raises(ValueError):
                col.read_path_slots(leaf)

    def test_bandwidth_accounting_matches_tree_storage(self, config):
        obj, col = TreeStorage(config), ColumnarTreeStorage(config)
        obj.read_path_buckets(1)
        obj.write_path(1)
        obj.read_path_buckets(5)
        col.read_path_slots(1)
        col.write_path_slots(1)
        col.read_path_slots(5)
        assert col.buckets_read == obj.buckets_read
        assert col.buckets_written == obj.buckets_written
        assert col.bytes_moved == obj.bytes_moved
        col.reset_counters()
        assert col.bytes_moved == 0

    def test_observer_sees_identical_traffic(self, config):
        class Recorder:
            def __init__(self):
                self.events = []

            def on_path_read(self, leaf, indices):
                self.events.append(("r", leaf, tuple(indices)))

            def on_path_write(self, leaf, indices):
                self.events.append(("w", leaf, tuple(indices)))

        a, b = Recorder(), Recorder()
        obj = TreeStorage(config, observer=a)
        col = ColumnarTreeStorage(config, observer=b)
        obj.read_path_buckets(2)
        obj.write_path(2)
        col.read_path_slots(2)
        col.write_path_slots(2)
        assert a.events == b.events

    def test_occupancy_counts_tree_blocks_only(self, config):
        col = ColumnarTreeStorage(config)
        backend = ColumnarPathOramBackend(config, col, DeterministicRng(1))
        backend.access(Op.WRITE, 1, 0, 2)
        backend.access(
            Op.APPEND, 9, append_block=Block(9, 1, bytes(config.block_bytes))
        )
        # Block 9 sits in the stash (arena-resident but not in the tree).
        assert col.occupancy() == 1
        assert backend.stash_occupancy() == 1


class TestBucketRecords:
    def test_replace_and_read_records(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        col = ColumnarTreeStorage(config)
        records = ((5, 1, b"x" * 16, None), (6, 2, b"y" * 16, b"mac!"))
        col.replace_bucket_records(0, records)
        assert col.bucket_records(0) == records
        col.replace_bucket_records(0, ())
        assert col.bucket_records(0) == ()

    def test_tree_records_match_object_after_identical_accesses(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        obj_backend = PathOramBackend(
            config, TreeStorage(config), DeterministicRng(1)
        )
        col_backend = ColumnarPathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(1)
        )
        rng = DeterministicRng(3)
        posmap = {}
        for _ in range(120):
            addr = rng.randrange(32)
            new_leaf = rng.random_leaf(config.levels)
            for backend in (obj_backend, col_backend):
                backend.access(Op.READ, addr, posmap.get(addr, 0), new_leaf)
            posmap[addr] = new_leaf
        assert tree_records(obj_backend.storage) == tree_records(col_backend.storage)
        assert tree_digest(obj_backend.storage) == tree_digest(col_backend.storage)


class TestCompatibilityPath:
    """Bucket-object interface: columnar storage under the object backend."""

    def test_object_backend_over_columnar_storage_matches_object(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        reference = PathOramBackend(config, TreeStorage(config), DeterministicRng(1))
        compat = PathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(1)
        )
        rng = DeterministicRng(9)
        posmap = {}
        for step in range(150):
            addr = rng.randrange(32)
            new_leaf = rng.random_leaf(config.levels)

            def update(block, step=step):
                block.data = bytes([step % 256]) * 16

            for backend in (reference, compat):
                backend.access(Op.WRITE, addr, posmap.get(addr, 0), new_leaf,
                               update=update)
            posmap[addr] = new_leaf
            assert reference.stash_snapshot() == compat.stash_snapshot()
        assert tree_records(reference.storage) == tree_records(compat.storage)

    def test_write_path_requires_matching_read(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        col = ColumnarTreeStorage(config)
        col.read_path(3)
        with pytest.raises(RuntimeError, match="write_path leaf"):
            col.write_path(5)

    def test_write_path_without_read_rejected(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        col = ColumnarTreeStorage(config)
        with pytest.raises(RuntimeError):
            col.write_path(0)


class TestColumnarStash:
    @pytest.fixture
    def pair(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        store = ColumnarTreeStorage(config)
        return store, ColumnarStash(limit=4, store=store)

    def test_add_and_introspect(self, pair):
        store, stash = pair
        stash.add(Block(3, 1, b"a" * 16, None))
        stash.add(Block(5, 2, b"b" * 16, b"mm"))
        assert len(stash) == 2
        assert stash.contains(3) and not stash.contains(4)
        assert stash.get(5).data == b"b" * 16
        assert [b.addr for b in stash] == [3, 5]  # insertion order

    def test_duplicate_add_raises(self, pair):
        _store, stash = pair
        stash.add(Block(3, 1, b"a" * 16, None))
        with pytest.raises(ValueError, match="duplicate block"):
            stash.add(Block(3, 9, b"c" * 16, None))

    def test_check_limit_records_and_raises(self, pair):
        _store, stash = pair
        for addr in range(5):
            stash.add(Block(addr, 0, b"z" * 16, None))
        with pytest.raises(StashOverflowError):
            stash.check_limit()
        assert stash.occupancy_stats.max == 5

    def test_backend_stash_overflow_parity(self):
        """Both backends overflow at the same step with a tiny limit."""
        config = OramConfig(num_blocks=64, block_bytes=16, stash_limit=2)
        obj = PathOramBackend(config, TreeStorage(config), DeterministicRng(1))
        col = ColumnarPathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(1)
        )
        failures = []
        for backend in (obj, col):
            step = None
            for i in range(4):
                try:
                    backend.access(
                        Op.APPEND,
                        100 + i,
                        append_block=Block(100 + i, 0, bytes(16)),
                    )
                except StashOverflowError:
                    step = i
                    break
            failures.append(step)
        assert failures[0] == failures[1] == 2


class TestVectorisedErrorPaths:
    """The numpy kernel's guard rails (forced via vec_min_merge=0)."""

    @pytest.fixture
    def backend(self):
        pytest.importorskip("numpy")
        config = OramConfig(num_blocks=64, block_bytes=16)
        backend = ColumnarPathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(1)
        )
        backend.vec_min_merge = 0
        return backend

    def test_out_of_range_leaf_detected(self, backend):
        backend.access(
            Op.APPEND,
            3,
            append_block=Block(3, backend.config.num_leaves * 4, bytes(16)),
        )
        with pytest.raises(ValueError, match="out of range"):
            backend.access(Op.READ, 8, 0, 1)

    def test_stash_duplicate_on_path_detected(self, backend):
        store = backend.storage
        backend.access(Op.WRITE, 5, 0, 0)  # lands somewhere on path 0
        backend.access(Op.APPEND, 9, append_block=Block(9, 0, bytes(16)))
        # Forge an aliased copy of the stash-resident block in the tree.
        store.replace_bucket_records(0, ((9, 0, bytes(16), None),))
        with pytest.raises(ValueError, match="duplicate block"):
            backend.access(Op.READ, 5, 0, 1)

    def test_duplicate_interest_detected(self, backend):
        store = backend.storage
        backend.access(Op.APPEND, 7, append_block=Block(7, 0, bytes(16)))
        store.replace_bucket_records(0, ((7, 0, bytes(16), None),))
        with pytest.raises(ValueError, match="duplicate block"):
            backend.access(Op.READ, 7, 0, 1)

    def test_out_of_range_leaf_restores_state(self, backend):
        """The eviction-time failure rolls back exactly: the stash snapshot
        and the tree digest equal their pre-access values, and the backend
        stays usable."""
        store = backend.storage
        config = backend.config
        rng = DeterministicRng(3)
        posmap = {}
        for addr in range(16):
            new_leaf = rng.random_leaf(config.levels)
            backend.access(Op.WRITE, addr, posmap.get(addr, 0), new_leaf)
            posmap[addr] = new_leaf
        backend.access(
            Op.APPEND,
            50,
            append_block=Block(50, config.num_leaves * 4, bytes(16)),
        )
        before_stash = backend.stash_snapshot()
        before_tree = tree_digest(store)
        with pytest.raises(ValueError, match="out of range"):
            backend.access(Op.READ, 3, posmap[3], 1)
        assert backend.stash_snapshot() == before_stash
        assert tree_digest(store) == before_tree
        # Remove the poison and the backend keeps working.
        backend.stash.slots_by_addr.pop(50)
        assert backend.access(Op.READ, 3, posmap[3], 2) is not None


class TestBackendFactory:
    def test_columnar_storage_selects_columnar_backend(self):
        config = OramConfig(num_blocks=64, block_bytes=16)
        backend = make_backend(
            config, ColumnarTreeStorage(config), DeterministicRng(1)
        )
        assert isinstance(backend, ColumnarPathOramBackend)

    def test_bucket_storages_select_object_backend(self):
        from repro.crypto.mac import Mac
        from repro.integrity.adapter import MerkleVerifiedStorage
        from repro.storage.array_tree import ArrayTreeStorage

        config = OramConfig(num_blocks=64, block_bytes=16)
        for storage in (
            TreeStorage(config),
            ArrayTreeStorage(config),
            MerkleVerifiedStorage(TreeStorage(config), Mac(b"k" * 16)),
        ):
            backend = make_backend(config, storage, DeterministicRng(1))
            assert isinstance(backend, PathOramBackend)

    def test_presets_and_env_select_columnar(self, monkeypatch):
        from repro.presets import build_frontend

        frontend = build_frontend("PC_X32", num_blocks=2**10, storage="columnar")
        assert isinstance(frontend.backend, ColumnarPathOramBackend)
        monkeypatch.setenv("REPRO_STORAGE", "columnar")
        frontend = build_frontend("P_X16", num_blocks=2**10)
        assert isinstance(frontend.backend, ColumnarPathOramBackend)
        recursive = build_frontend("R_X8", num_blocks=2**10)
        assert all(
            isinstance(b, ColumnarPathOramBackend) for b in recursive.backends
        )
        phantom = build_frontend("phantom_4kb", num_blocks=2**6, block_bytes=256)
        assert isinstance(phantom.backend, ColumnarPathOramBackend)

    def test_spec_rejects_unknown_storage(self):
        from repro.errors import SpecError
        from repro.spec import SchemeSpec

        with pytest.raises(SpecError, match="unknown storage"):
            SchemeSpec(storage="quantum")
