"""Recursive ORAM baseline (R_X8-style, separate trees)."""

import pytest

from repro.adversary.observer import TraceObserver
from repro.backend.ops import Op
from repro.errors import ConfigurationError
from repro.frontend.recursive import RecursiveFrontend
from repro.utils.rng import DeterministicRng


def make(num_blocks=2**10, onchip_entries=2**4, **kwargs):
    return RecursiveFrontend(
        num_blocks=num_blocks,
        onchip_entries=onchip_entries,
        rng=DeterministicRng(11),
        **kwargs,
    )


class TestStructure:
    def test_level_count_follows_budget(self):
        # N=2^10, X=8, p=2^4: 10 -> 7 -> 4 -> 1 entries: H = 3.
        frontend = make()
        assert frontend.num_levels == 3
        assert len(frontend.backends) == 3

    def test_posmap_trees_use_posmap_block_size(self):
        frontend = make(posmap_block_bytes=32)
        assert frontend.configs[0].block_bytes == 64
        for cfg in frontend.configs[1:]:
            assert cfg.block_bytes == 32

    def test_x8_fanout(self):
        frontend = make(posmap_block_bytes=32, leaf_bytes=4)
        assert frontend.space.fanout == 8

    def test_tiny_posmap_block_rejected(self):
        with pytest.raises(ConfigurationError):
            make(posmap_block_bytes=4)

    def test_onchip_fits_budget(self):
        frontend = make(onchip_entries=2**4)
        assert frontend.posmap.entries <= 2**4


class TestFunctional:
    def test_write_read(self):
        frontend = make()
        payload = b"\x5A" * 64
        frontend.write(123, payload)
        assert frontend.read(123) == payload

    def test_fresh_reads_zero(self):
        frontend = make()
        assert frontend.read(999) == bytes(64)

    def test_shadow_consistency(self):
        frontend = make()
        rng = DeterministicRng(23)
        shadow = {}
        for step in range(400):
            addr = rng.randrange(2**10)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * 64
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(64))

    def test_neighbouring_addresses_share_posmap_block(self):
        """Blocks {a, a+1, ...} within a group hit the same PosMap block."""
        frontend = make()
        frontend.write(64, b"\x01" * 64)
        frontend.write(65, b"\x02" * 64)
        assert frontend.read(64) == b"\x01" * 64
        assert frontend.read(65) == b"\x02" * 64

    def test_rejects_backend_ops(self):
        with pytest.raises(ConfigurationError):
            make().access(0, Op.APPEND)

    def test_rejects_partial_write(self):
        with pytest.raises(ValueError):
            make().write(0, b"x")


class TestAccounting:
    def test_every_access_walks_all_levels(self):
        frontend = make()
        result = frontend.access(5, Op.READ)
        assert result.tree_accesses == frontend.num_levels
        assert result.posmap_tree_accesses == frontend.num_levels - 1

    def test_posmap_bandwidth_dominates_data(self):
        """The §3.2.1 problem: PosMap ORAMs eat ~half the bandwidth."""
        frontend = make()
        rng = DeterministicRng(2)
        for _ in range(50):
            frontend.read(rng.randrange(2**10))
        assert frontend.posmap_bytes_moved > 0.5 * frontend.data_bytes_moved

    def test_observer_sees_each_tree(self):
        observer = TraceObserver()
        frontend = RecursiveFrontend(
            num_blocks=2**10,
            onchip_entries=2**4,
            rng=DeterministicRng(1),
            observer=observer,
        )
        frontend.read(7)
        trees = set(e.tree_id for e in observer.events)
        assert trees == {0, 1, 2}

    def test_stats_accumulate(self):
        frontend = make()
        for addr in range(10):
            frontend.read(addr)
        assert frontend.stats.accesses == 10
        assert frontend.stats.data_tree_accesses == 10
        assert frontend.stats.posmap_tree_accesses == 20
