"""ResultCache behaviour and incremental ``run_suite`` / ``baselines``."""

import dataclasses
import json

import pytest

import repro.sim.runner as runner_mod
from repro.sim.metrics import SimResult
from repro.sim.result_cache import (
    RESULT_SCHEMA_VERSION,
    ResultCache,
    result_key,
)
from repro.sim.runner import SimulationRunner

BENCHES = ["gob", "hmmer"]
MISSES = 150


def _result(**kw) -> SimResult:
    base = dict(
        benchmark="gob",
        scheme="PC_X32",
        cycles=123456.75,
        instructions=1000,
        llc_misses=50,
        oram_accesses=60,
        tree_accesses=120,
        data_bytes=4096,
        posmap_bytes=512,
        plb_hit_rate=0.5,
        mpki=3.25,
    )
    base.update(kw)
    return SimResult(**base)


def _runner(tmp_path, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / "traces",
        result_cache_dir=tmp_path / "results",
        **kw,
    )


class TestResultCacheStore:
    def test_round_trip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        assert cache.store("k1", result)
        loaded = cache.load("k1")
        assert loaded == result  # dataclass equality: float-bit exact
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("absent") is None
        assert cache.misses == 1

    def test_corrupt_entry_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k1", _result())
        cache.path_for("k1").write_text("not json{{{", "utf-8")
        assert cache.load("k1") is None
        assert not cache.path_for("k1").exists()

    def test_stale_schema_version_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k1", _result())
        payload = json.loads(cache.path_for("k1").read_text("utf-8"))
        payload["schema"] = RESULT_SCHEMA_VERSION - 1
        cache.path_for("k1").write_text(json.dumps(payload), "utf-8")
        assert cache.load("k1") is None
        assert not cache.path_for("k1").exists()

    def test_unknown_field_evicted(self, tmp_path):
        """A payload written by a future SimResult shape is a miss."""
        cache = ResultCache(tmp_path)
        cache.store("k1", _result())
        payload = json.loads(cache.path_for("k1").read_text("utf-8"))
        payload["result"]["frobnication_index"] = 7
        cache.path_for("k1").write_text(json.dumps(payload), "utf-8")
        assert cache.load("k1") is None

    def test_unwritable_dir_disables_store(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        cache = ResultCache(blocker / "sub")
        assert cache.store("k1", _result()) is False


class TestResultKey:
    def test_key_varies_with_overrides(self, tmp_path):
        runner = _runner(tmp_path)
        base = runner.result_key("PC_X32", "gob")
        assert base != runner.result_key("PC_X32", "gob", plb_capacity_bytes=8192)
        assert base != runner.result_key("PI_X8", "gob")
        assert base != runner.result_key("PC_X32", "hmmer")

    def test_key_varies_with_code_version(self, monkeypatch, tmp_path):
        runner = _runner(tmp_path)
        before = runner.result_key("PC_X32", "gob")
        import repro

        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        assert runner.result_key("PC_X32", "gob") != before

    def test_key_varies_with_seed_and_budget(self, tmp_path):
        a = _runner(tmp_path)
        b = SimulationRunner(
            misses_per_benchmark=MISSES,
            seed=1,
            cache_dir=tmp_path / "traces",
            result_cache_dir=tmp_path / "results",
        )
        c = SimulationRunner(
            misses_per_benchmark=MISSES + 1,
            cache_dir=tmp_path / "traces",
            result_cache_dir=tmp_path / "results",
        )
        keys = {
            r.result_key("PC_X32", "gob") for r in (a, b, c)
        }
        assert len(keys) == 3


class TestIncrementalSuite:
    def test_second_invocation_replays_nothing(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        first = runner.run_suite(["PC_X32", "R_X8"], BENCHES)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("replay_trace called on a warm cache")

        monkeypatch.setattr(runner_mod, "replay_trace", boom)
        fresh = _runner(tmp_path)  # new runner, same config, same disk cache
        second = fresh.run_suite(["PC_X32", "R_X8"], BENCHES)
        assert second == first

    def test_overrides_change_is_cold(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        runner.run_suite(["PC_X32"], ["gob"])
        calls = []
        real = runner_mod.replay_trace

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "replay_trace", counting)
        fresh = _runner(tmp_path)
        fresh.run_suite(["PC_X32"], ["gob"], plb_capacity_bytes=8 * 1024)
        assert calls  # different overrides digest -> actually replayed

    def test_progress_streams_every_cell(self, tmp_path):
        runner = _runner(tmp_path)
        seen = []
        runner.run_suite(
            ["PC_X32"], BENCHES, workers=1,
            progress=lambda s, b, r, cached: seen.append((s, b, cached)),
        )
        assert seen == [("PC_X32", b, False) for b in BENCHES]
        warm = []
        _runner(tmp_path).run_suite(
            ["PC_X32"], BENCHES, workers=1,
            progress=lambda s, b, r, cached: warm.append((s, b, cached)),
        )
        assert warm == [("PC_X32", b, True) for b in BENCHES]

    def test_progress_streams_parallel_cells(self, tmp_path):
        seen = []
        _runner(tmp_path).run_suite(
            ["PC_X32"], BENCHES, workers=2,
            progress=lambda s, b, r, cached: seen.append((s, b, cached)),
        )
        assert sorted(seen) == sorted(("PC_X32", b, False) for b in BENCHES)

    def test_cached_results_bitwise_match_parallel(self, tmp_path):
        runner = _runner(tmp_path)
        cold = runner.run_suite(["PC_X32"], BENCHES, workers=2)
        warm = _runner(tmp_path).run_suite(["PC_X32"], BENCHES, workers=2)
        assert warm == cold

    def test_run_one_uses_cache(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        first = runner.run_one("PC_X32", "gob")
        monkeypatch.setattr(
            runner_mod, "replay_trace",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("replayed")),
        )
        assert _runner(tmp_path).run_one("PC_X32", "gob") == first


class TestForce:
    """``force=True`` bypasses cache *loads* without disabling the caches."""

    def test_force_recomputes_on_warm_cache(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        first = runner.run_one("PC_X32", "gob")
        calls = []
        real = runner_mod.replay_trace

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "replay_trace", counting)
        forced = _runner(tmp_path, force=True).run_one("PC_X32", "gob")
        assert calls  # warm cache, yet replayed
        assert forced == first  # recomputation is bit-identical

    def test_force_still_refreshes_cache_entries(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run_one("PC_X32", "gob")
        forced = _runner(tmp_path, force=True)
        forced.run_one("PC_X32", "gob")
        assert forced.result_cache.stores == 1  # refreshed, not disabled
        assert forced.result_cache.hits == 0  # never loaded

    def test_force_regenerates_trace(self, tmp_path):
        runner = _runner(tmp_path)
        runner.trace("gob")
        forced = _runner(tmp_path, force=True)
        forced.trace("gob")
        assert forced.trace_cache.hits == 0
        assert forced.trace_cache.stores == 1

    def test_force_env_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(runner_mod.FORCE_ENV, "1")
        assert _runner(tmp_path).force is True
        monkeypatch.setenv(runner_mod.FORCE_ENV, "0")
        assert _runner(tmp_path).force is False
        monkeypatch.delenv(runner_mod.FORCE_ENV)
        assert _runner(tmp_path).force is False
        assert _runner(tmp_path, force=True).force is True

    def test_forced_suite_matches_cached_suite(self, tmp_path):
        runner = _runner(tmp_path)
        cold = runner.run_suite(["PC_X32"], BENCHES)
        forced = _runner(tmp_path, force=True).run_suite(["PC_X32"], BENCHES)
        assert forced == cold

    def test_forced_parallel_suite_matches_serial(self, tmp_path):
        serial = _runner(tmp_path / "a", force=True).run_suite(
            ["PC_X32"], BENCHES
        )
        parallel = _runner(tmp_path / "b", force=True).run_suite(
            ["PC_X32"], BENCHES, workers=2
        )
        assert parallel == serial


class TestBaselines:
    def test_baselines_cached(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        first = runner.baselines(BENCHES)
        assert list(first) == BENCHES

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("insecure_cycles called on a warm cache")

        monkeypatch.setattr(runner_mod, "insecure_cycles", boom)
        second = _runner(tmp_path).baselines(BENCHES)
        assert second == first

    def test_baselines_parallel_trace_generation(self, tmp_path):
        serial = _runner(tmp_path / "a").baselines(BENCHES)
        parallel = _runner(tmp_path / "b").baselines(BENCHES, workers=2)
        assert parallel == serial

    def test_baselines_progress_flags(self, tmp_path):
        flags = []
        _runner(tmp_path).baselines(
            BENCHES, progress=lambda s, b, r, cached: flags.append(cached)
        )
        assert flags == [False, False]
