"""Lockstep differential: batched replay pipeline vs the scalar kernel.

PR-4 methodology applied to the replay loop itself: the batched kernel
(columnar trace columns, vectorised line->block translation, plan_batch
frontend planning, vectorised latency gather) must be *performance-only*.
Two frontends built from the same spec and seed replay the same trace —
one through ``REPRO_REPLAY=scalar``, one through the batched pipeline —
and after every access batch the harness compares:

- the per-batch ``SimResult`` (every field, diagnostic counters
  included);
- the full ``FrontendStats`` block;
- the SHA-256 tree digest(s) of the backend storage — the complete
  external memory state.

The matrix spans scheme x storage combinations (object, array and
columnar backends under PLB/compressed/PMMAC/recursive frontends) and
multiple trace seeds, so a divergence anywhere in the pipeline fails at
the first batch that exposes it.
"""

import dataclasses

import pytest

from repro.presets import build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.replay import (
    REPLAY_MODES,
    default_replay_mode,
    resolve_replay_mode,
    translate_block_addrs,
)
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.storage.snapshot import tree_digest
from repro.utils.rng import DeterministicRng

BLOCKS = 2**10


def make_trace(seed: int, events: int, blocks: int = BLOCKS) -> MissTrace:
    rng = DeterministicRng(seed)
    trace = MissTrace(
        name=f"diff-{seed}", instructions=50_000, mem_refs=20_000,
        l1_hits=15_000, l2_hits=3_000,
    )
    trace.events = [
        MissEvent(rng.randrange(blocks), rng.random() < 0.3)
        for _ in range(events)
    ]
    return trace


def chunked(trace: MissTrace, batch: int):
    """Sub-traces of ``batch`` events each (scalar counters repeated)."""
    for start in range(0, len(trace.events), batch):
        chunk = MissTrace(
            name=trace.name,
            instructions=trace.instructions,
            mem_refs=trace.mem_refs,
            l1_hits=trace.l1_hits,
            l2_hits=trace.l2_hits,
        )
        chunk.events = trace.events[start : start + batch]
        yield chunk


def frontend_digests(frontend):
    """Tree digest(s) of a frontend's backend storage (all trees)."""
    backends = getattr(frontend, "backends", None)
    if backends is not None:  # recursive: one tree per level
        return [tree_digest(b.storage) for b in backends]
    return [tree_digest(frontend.backend.storage)]


def stats_image(frontend):
    return {
        f.name: getattr(frontend.stats, f.name)
        for f in dataclasses.fields(frontend.stats)
    }


#: The scheme x storage lockstep matrix (>= 4 combinations, all three
#: storage backends, recursive + PLB + compressed + PMMAC frontends).
COMBOS = [
    ("P_X16", "object"),
    ("PC_X32", "array"),
    ("PI_X8", "columnar"),
    ("PIC_X32", "columnar"),
    ("R_X8", "object"),
    ("PC_X32", "columnar"),
]

SEEDS = (8, 91, 2015)


class TestLockstep:
    @pytest.mark.parametrize("scheme,storage", COMBOS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_is_bit_identical_per_batch(self, scheme, storage, seed):
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        scalar_fe = build_frontend(
            scheme, num_blocks=BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        batched_fe = build_frontend(
            scheme, num_blocks=BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        trace = make_trace(seed, events=600)
        for index, chunk in enumerate(chunked(trace, batch=150)):
            scalar_result = replay_trace(
                scalar_fe, chunk, timing, scheme=scheme, mode="scalar"
            )
            batched_result = replay_trace(
                batched_fe, chunk, timing, scheme=scheme, mode="batched"
            )
            context = f"{scheme}/{storage} seed={seed} batch={index}"
            assert scalar_result == batched_result, context
            # Diagnostic counters too — the kernels must drive the PRF
            # cache through the exact same state sequence.
            assert scalar_result.prf_cache_hits == batched_result.prf_cache_hits, context
            assert repr(scalar_result.cycles) == repr(batched_result.cycles), context
            assert stats_image(scalar_fe) == stats_image(batched_fe), context
            assert frontend_digests(scalar_fe) == frontend_digests(batched_fe), context

    def test_whole_trace_multi_seed_sweep(self):
        """Longer single-shot replays across every preset scheme.

        Every supported kernel — scalar, batched and compiled (which
        degrades to batched with a warning when the extension is
        unbuilt) — must agree on SimResult and tree digests.
        """
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        for scheme in ("R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32"):
            for seed in (3, 44):
                results = {}
                for mode in REPLAY_MODES:
                    frontend = build_frontend(
                        scheme, num_blocks=BLOCKS, rng=DeterministicRng(7)
                    )
                    results[mode] = (
                        replay_trace(
                            frontend,
                            make_trace(seed, events=900),
                            timing,
                            scheme=scheme,
                            mode=mode,
                        ),
                        frontend_digests(frontend),
                    )
                for mode in REPLAY_MODES:
                    assert results[mode] == results["batched"], (
                        scheme, seed, mode
                    )


class TestPlanBatch:
    def test_plan_batch_is_invisible_to_outcomes(self):
        """Pre-planning any address set never changes simulated results."""
        planned = build_frontend("PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(7))
        unplanned = build_frontend("PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(7))
        addrs = [5, 5, 9, 130, 9, 5, 1000, 130]
        planned.plan_batch(addrs)
        for addr in addrs:
            a = planned.access(addr)
            b = unplanned.access(addr)
            assert (a.data, a.tree_accesses, a.posmap_tree_accesses) == (
                b.data, b.tree_accesses, b.posmap_tree_accesses
            )
        assert stats_image(planned) == stats_image(unplanned)
        assert frontend_digests(planned) == frontend_digests(unplanned)

    def test_plan_batch_counts_cold_addresses_once(self):
        frontend = build_frontend("PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(7))
        assert frontend.plan_batch([3, 3, 3, 7, 7, 3]) == 2  # runs short-circuit
        assert frontend.plan_batch([3, 7]) == 0  # already cached
        assert frontend.plan_batch([]) == 0

    def test_recursive_frontend_plans_chains(self):
        frontend = build_frontend("R_X8", num_blocks=BLOCKS, rng=DeterministicRng(7))
        assert frontend.plan_batch([0, 1, 1, 2]) == 3
        assert frontend.plan_batch([2, 0]) == 0
        # Planned chains are exactly what access would compute.
        assert frontend._chain_cache[2] == frontend.space.chain(2)

    def test_plan_batch_respects_cache_limit(self):
        from repro.frontend import unified

        frontend = build_frontend("P_X16", num_blocks=BLOCKS, rng=DeterministicRng(7))
        limit = unified.CHAIN_CACHE_LIMIT
        try:
            unified.CHAIN_CACHE_LIMIT = 4
            frontend.plan_batch(range(10))
            assert len(frontend._chain_cache) <= 4
        finally:
            unified.CHAIN_CACHE_LIMIT = limit


class TestKernelSelection:
    def test_default_mode_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY", raising=False)
        assert default_replay_mode() == "batched"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "scalar")
        assert default_replay_mode() == "scalar"
        assert resolve_replay_mode(None) == "scalar"

    def test_env_garbage_raises(self, monkeypatch):
        """A typo'd REPRO_REPLAY aborts instead of silently running
        batched under the wrong label (regression: it used to fall
        back)."""
        monkeypatch.setenv("REPRO_REPLAY", "quantum")
        with pytest.raises(ValueError, match="unknown replay mode 'quantum'"):
            default_replay_mode()
        monkeypatch.setenv("REPRO_REPLAY", "scaler")  # the classic typo
        with pytest.raises(ValueError, match="REPRO_REPLAY"):
            resolve_replay_mode(None)

    def test_env_whitespace_and_case_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "  Scalar ")
        assert default_replay_mode() == "scalar"

    def test_explicit_mode_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "scalar")
        assert resolve_replay_mode("batched") == "batched"

    def test_unknown_explicit_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown replay mode"):
            resolve_replay_mode("vectorised")

    def test_replay_trace_rejects_unknown_mode(self):
        frontend = build_frontend("P_X16", num_blocks=BLOCKS, rng=DeterministicRng(7))
        with pytest.raises(ValueError, match="unknown replay mode"):
            replay_trace(
                frontend,
                make_trace(1, events=4),
                OramTimingModel(tree_latency_cycles=1000.0),
                mode="quantum",
            )


class TestTranslation:
    def test_identity_and_shift_and_divide(self):
        trace = make_trace(5, events=64, blocks=2**12)
        line_addrs, _ = trace.columns()
        expect1 = [e.line_addr for e in trace.events]
        assert translate_block_addrs(line_addrs, 1) == expect1
        assert translate_block_addrs(line_addrs, 4) == [a // 4 for a in expect1]
        assert translate_block_addrs(line_addrs, 3) == [a // 3 for a in expect1]

    def test_plain_sequence_fallback(self):
        assert translate_block_addrs([0, 5, 9, 16], 4) == [0, 1, 2, 4]
        assert translate_block_addrs([7, 8], 1) == [7, 8]

    def test_numpy_absent_path_matches_numpy_path(self, monkeypatch):
        """The scalar fallback (numpy unavailable) is lockstep with the
        vectorised shift/divide across pow2, non-pow2 and identity."""
        import repro.sim.replay as replay_mod

        trace = make_trace(6, events=128, blocks=2**12)
        line_addrs, _ = trace.columns()
        vectorised = {
            lpb: translate_block_addrs(line_addrs, lpb) for lpb in (1, 2, 8, 3, 7)
        }
        monkeypatch.setattr(replay_mod, "_np", None)
        plain = [int(a) for a in line_addrs]
        for lpb, expect in vectorised.items():
            assert translate_block_addrs(plain, lpb) == expect, lpb

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_lines_per_block_below_one_rejected(self, bad):
        """Regression: a malformed geometry used to take the shift
        fast-path and emit garbage addresses; now it fails loudly."""
        with pytest.raises(ValueError, match="lines_per_block must be >= 1"):
            translate_block_addrs([1, 2, 3], bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_lines_per_block_guard_covers_numpy_columns(self, bad):
        trace = make_trace(9, events=8)
        line_addrs, _ = trace.columns()
        with pytest.raises(ValueError, match="lines_per_block must be >= 1"):
            translate_block_addrs(line_addrs, bad)
