"""PLB cache behaviour: hits, eviction, associativity, accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.addrgen import AddressSpace
from repro.frontend.plb import Plb, PlbEntry


def entry(level, index, leaf=0):
    return PlbEntry(AddressSpace.tag(level, index), bytearray(64), leaf)


class TestBasics:
    def test_miss_then_hit(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        assert plb.lookup(entry(1, 5).tagged_addr) is None
        plb.insert(entry(1, 5, leaf=7))
        found = plb.lookup(AddressSpace.tag(1, 5))
        assert found is not None
        assert found.leaf == 7

    def test_levels_disambiguated(self):
        """i||a_i tagging: same index at different levels are distinct."""
        plb = Plb(capacity_bytes=16 * 64, block_bytes=64)
        plb.insert(entry(1, 5, leaf=1))
        plb.insert(entry(2, 5, leaf=2))
        assert plb.peek(AddressSpace.tag(1, 5)).leaf == 1
        assert plb.peek(AddressSpace.tag(2, 5)).leaf == 2

    def test_duplicate_insert_rejected(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 5))
        with pytest.raises(ValueError):
            plb.insert(entry(1, 5))

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            Plb(capacity_bytes=32, block_bytes=64)

    def test_bad_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            Plb(capacity_bytes=256, block_bytes=64, ways=0)

    def test_entry_count(self):
        plb = Plb(capacity_bytes=4 * 64, block_bytes=64)
        assert plb.num_sets == 4


class TestEviction:
    def test_direct_mapped_conflict_evicts(self):
        plb = Plb(capacity_bytes=4 * 64, block_bytes=64, ways=1)
        plb.insert(entry(1, 0, leaf=1))
        victim = plb.insert(entry(1, 4, leaf=2))  # 4 % 4 == 0: same set
        assert victim is not None
        assert victim.leaf == 1
        assert plb.peek(AddressSpace.tag(1, 0)) is None

    def test_lru_within_set(self):
        plb = Plb(capacity_bytes=4 * 64, block_bytes=64, ways=2)
        # Set count = 2; indices 0, 2, 4 all map to set 0.
        plb.insert(entry(0, 0))
        plb.insert(entry(0, 2))
        plb.lookup(AddressSpace.tag(0, 0))  # touch 0: now 2 is LRU
        victim = plb.insert(entry(0, 4))
        assert victim.tagged_addr == AddressSpace.tag(0, 2)

    def test_invalidate(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 3))
        removed = plb.invalidate(AddressSpace.tag(1, 3))
        assert removed is not None
        assert plb.peek(AddressSpace.tag(1, 3)) is None
        assert plb.invalidate(AddressSpace.tag(1, 3)) is None

    def test_full_associative_no_premature_eviction(self):
        plb = Plb(capacity_bytes=4 * 64, block_bytes=64, ways=4)
        victims = [plb.insert(entry(0, i)) for i in range(4)]
        assert all(v is None for v in victims)
        assert len(plb) == 4


class TestAccounting:
    def test_hit_rate(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 1))
        plb.lookup(AddressSpace.tag(1, 1))
        plb.lookup(AddressSpace.tag(1, 2))
        assert plb.hits == 1
        assert plb.misses == 1
        assert plb.hit_rate == 0.5

    def test_peek_and_contains_do_not_count(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 1))
        plb.peek(AddressSpace.tag(1, 1))
        plb.contains(AddressSpace.tag(1, 1))
        assert plb.hits == 0 and plb.misses == 0

    def test_reset_counters_keeps_contents(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 1))
        plb.lookup(AddressSpace.tag(1, 1))
        plb.reset_counters()
        assert plb.hits == 0
        assert plb.peek(AddressSpace.tag(1, 1)) is not None

    def test_zero_lookups_hit_rate(self):
        assert Plb(capacity_bytes=256, block_bytes=64).hit_rate == 0.0

    def test_entries_listing(self):
        plb = Plb(capacity_bytes=8 * 64, block_bytes=64)
        plb.insert(entry(1, 1))
        plb.insert(entry(2, 3))
        assert len(plb.entries()) == 2
