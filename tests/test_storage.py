"""Blocks, buckets and the plaintext tree storage."""

import pytest

from repro.config import OramConfig
from repro.storage.block import Block
from repro.storage.bucket import Bucket
from repro.storage.tree import TreeStorage, path_indices


class TestBlock:
    def test_copy_is_independent(self):
        a = Block(1, 2, b"data", b"mac")
        b = a.copy()
        b.leaf = 99
        assert a.leaf == 2
        assert b.data == a.data

    def test_defaults(self):
        blk = Block(1, 2, b"x")
        assert blk.mac is None


class TestBucket:
    def test_capacity_enforced(self):
        bucket = Bucket(2)
        bucket.add(Block(1, 0, b""))
        bucket.add(Block(2, 0, b""))
        assert bucket.is_full()
        with pytest.raises(OverflowError):
            bucket.add(Block(3, 0, b""))

    def test_drain_empties(self):
        bucket = Bucket(4)
        bucket.add(Block(1, 0, b""))
        drained = bucket.drain()
        assert len(drained) == 1
        assert len(bucket) == 0

    def test_find(self):
        bucket = Bucket(4)
        bucket.add(Block(5, 1, b"x"))
        assert bucket.find(5).data == b"x"
        assert bucket.find(6) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Bucket(0)

    def test_iteration(self):
        bucket = Bucket(4)
        for i in range(3):
            bucket.add(Block(i, 0, b""))
        assert sorted(b.addr for b in bucket) == [0, 1, 2]


class TestPathIndices:
    def test_root_is_zero(self):
        for leaf in range(8):
            assert path_indices(leaf, 3)[0] == 0

    def test_leaf_index(self):
        # Leaves of a 3-level tree occupy heap indices 7..14.
        for leaf in range(8):
            assert path_indices(leaf, 3)[-1] == 7 + leaf

    def test_length(self):
        assert len(path_indices(0, 5)) == 6

    def test_parent_child_relation(self):
        for leaf in range(16):
            idx = path_indices(leaf, 4)
            for depth in range(1, 5):
                assert (idx[depth] - 1) // 2 == idx[depth - 1]

    def test_sibling_paths_diverge_at_lsb(self):
        a = path_indices(0b000, 3)
        b = path_indices(0b001, 3)
        assert a[:3] == b[:3]
        assert a[3] != b[3]


class TestTreeStorage:
    def test_read_path_returns_all_levels(self, small_config):
        storage = TreeStorage(small_config)
        path = storage.read_path(0)
        assert len(path) == small_config.levels + 1
        assert [level for level, _ in path] == list(range(small_config.levels + 1))

    def test_leaf_bounds_checked(self, small_config):
        storage = TreeStorage(small_config)
        with pytest.raises(ValueError):
            storage.read_path(small_config.num_leaves)
        with pytest.raises(ValueError):
            storage.read_path(-1)

    def test_byte_accounting(self, small_config):
        storage = TreeStorage(small_config)
        storage.read_path(3)
        storage.write_path(3)
        per_path = (small_config.levels + 1) * small_config.bucket_bytes
        assert storage.bytes_read == per_path
        assert storage.bytes_written == per_path
        assert storage.bytes_moved == 2 * per_path

    def test_reset_counters(self, small_config):
        storage = TreeStorage(small_config)
        storage.read_path(0)
        storage.reset_counters()
        assert storage.bytes_moved == 0

    def test_buckets_persist(self, small_config):
        storage = TreeStorage(small_config)
        path = storage.read_path(5)
        path[0][1].add(Block(42, 5, bytes(64)))
        storage.write_path(5)
        again = storage.read_path(5)
        assert again[0][1].find(42) is not None

    def test_occupancy(self, small_config):
        storage = TreeStorage(small_config)
        assert storage.occupancy() == 0
        storage.bucket_at(0).add(Block(1, 0, bytes(64)))
        assert storage.occupancy() == 1
