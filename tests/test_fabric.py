"""Fabric lockstep: distributed sweeps equal the local golden, byte for byte.

The acceptance property of the sweep fabric mirrors the fault plane's:
for every scheduling event the coordinator can produce — work stealing,
worker connection loss, heartbeat silence, spawned-worker death and
respawn, Ctrl-C + resume across topologies — the completed report is
bit-identical to a fault-free local run at the same seed. Only the
``resilience`` accounting block (which carries the fabric counters) may
differ. Protocol framing and the runner wire format get unit coverage
here too, since every distributed guarantee rests on them.
"""

import contextlib
import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    ConfigurationError,
    FabricError,
    SpecError,
    SweepInterrupted,
)
from repro.fabric import (
    FabricCoordinator,
    FabricExecutor,
    FabricWorker,
    ProtocolError,
    parse_address,
    recv_message,
    runner_from_wire,
    runner_to_wire,
    send_message,
)
from repro.fabric.protocol import MAX_MESSAGE_BYTES
from repro.faults import RetryPolicy, injected
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

BENCHES = ("gob", "hmmer")
MISSES = 150
SCHEMES = ["P_X16", "PC_X32"]


def _runner(tmp_path, tag, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / tag / "traces",
        result_cache_dir=tmp_path / tag / "results",
        **kw,
    )


def _sweep() -> SweepSpec:
    return SweepSpec.from_args(
        schemes=SCHEMES,
        grid={"plb_capacity_bytes": ["4KiB", "8KiB"]},
        benchmarks=BENCHES,
    )


def _strip(report):
    """Drop the (intentionally differing) resilience accounting block."""
    clone = dict(report)
    assert "resilience" in clone
    clone.pop("resilience")
    return clone


def _start_worker(host, port):
    thread = threading.Thread(
        target=FabricWorker(host, port).run, daemon=True
    )
    thread.start()
    return thread


@contextlib.contextmanager
def _fabric(runner, n_workers=2, **coord_kw):
    """A coordinator plus in-process (thread) workers.

    Thread workers share the installed fault plan, which is exactly what
    the lockstep tests want — but it also means plans here must never
    use the ``exit`` action (``os._exit`` would take pytest down).
    """
    coord_kw.setdefault("heartbeat_interval", 0.05)
    coord_kw.setdefault("startup_timeout", 30.0)
    coordinator = FabricCoordinator(runner, spawn=0, **coord_kw)
    host, port = coordinator.start()
    threads = [_start_worker(host, port) for _ in range(n_workers)]
    try:
        yield coordinator, FabricExecutor(coordinator)
    finally:
        coordinator.close()
        for thread in threads:
            thread.join(timeout=5)


def _frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


class TestProtocol:
    def test_parse_address_round_trips(self):
        assert parse_address("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_address("example.org:80") == ("example.org", 80)

    @pytest.mark.parametrize(
        "bad", ["", "nohost", ":80", "host:", "host:xx", "host:70000"]
    )
    def test_parse_address_rejects_malformed(self, bad):
        with pytest.raises(SpecError):
            parse_address(bad)

    def test_send_recv_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "lease", "tasks": [{"id": "k"}], "n": 1})
            assert recv_message(b) == {
                "type": "lease",
                "tasks": [{"id": "k"}],
                "n": 1,
            }
        finally:
            a.close()
            b.close()

    def test_clean_eof_at_frame_boundary_is_none(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "need"})
            a.close()
            assert recv_message(b) == {"type": "need"}
            assert recv_message(b) is None  # orderly shutdown, not an error
        finally:
            b.close()

    def test_midframe_eof_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"type":')  # truncated body
            a.close()
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            b.close()

    @pytest.mark.parametrize(
        "payload",
        [
            b"{not json",  # malformed
            b"[1, 2]",  # not an object
            b'{"n": 1}',  # object without a type
        ],
    )
    def test_bad_frames_are_protocol_errors(self, payload):
        a, b = socket.socketpair()
        try:
            a.sendall(_frame(payload))
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversize_frame_refused_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_injected_rpc_faults_surface_as_protocol_errors(self):
        a, b = socket.socketpair()
        try:
            with injected("fabric.rpc.crash@peer/send/need#1") as plan:
                with pytest.raises(ProtocolError):
                    send_message(a, {"type": "need"})
            assert plan.fired
            send_message(a, {"type": "need"})  # plan cleared: flows again
            with injected("fabric.rpc.crash@peer/recv/need#1"):
                with pytest.raises(ProtocolError):
                    recv_message(b)
        finally:
            a.close()
            b.close()


class TestRunnerWire:
    def test_round_trip_preserves_cell_identity(self, tmp_path):
        runner = _runner(tmp_path, "wire", seed=7)
        clone = runner_from_wire(runner_to_wire(runner))
        assert clone.seed == runner.seed
        assert clone.misses == runner.misses
        assert clone.result_key("P_X16", "gob") == runner.result_key(
            "P_X16", "gob"
        )
        assert clone.result_key(
            "PC_X32", "hmmer", plb_capacity_bytes=8192
        ) == runner.result_key("PC_X32", "hmmer", plb_capacity_bytes=8192)

    def test_wire_format_is_json_safe(self, tmp_path):
        wire = runner_to_wire(_runner(tmp_path, "wire"))
        assert json.loads(json.dumps(wire, sort_keys=True)) == wire


class TestFabricLockstep:
    def test_fabric_sweep_bit_identical_to_serial(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "f")
        with _fabric(runner, n_workers=2) as (coordinator, executor):
            report = run_sweep(_sweep(), runner, executor=executor)
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)
        fabric = report["resilience"]["fabric"]
        assert fabric["workers_joined"] == 2
        # 8 grid cells + 2 insecure baselines, all cold.
        assert fabric["completed"] == 10
        assert fabric["errors"] == 0 and fabric["dead"] == 0

    def test_warm_cells_served_from_cache_not_fabric(self, tmp_path):
        runner = _runner(tmp_path, "w")
        golden = run_sweep(_sweep(), runner)  # local run warms the caches
        with _fabric(runner, n_workers=1) as (coordinator, executor):
            report = run_sweep(_sweep(), runner, executor=executor)
        fabric = report["resilience"]["fabric"]
        assert fabric["dispatched"] == 0  # every cell was content-addressed
        assert _strip(report) == _strip(golden)

    def test_worker_connection_drop_heals_bit_identical(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "d")
        # The first result frame sent anywhere in the process dies on the
        # wire; that worker's connection drops and its lease is reclaimed.
        with injected("fabric.rpc.crash@worker/send/result#1") as plan:
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        assert plan.fired
        fabric = report["resilience"]["fabric"]
        assert fabric["dead"] >= 1
        assert fabric["reclaimed"] >= 1
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)

    def test_stalled_worker_cell_is_stolen(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "s")
        stall_secs = 60.0
        start = time.perf_counter()
        # One cell stalls far past the test budget; heartbeats keep the
        # stalled worker alive, so only stealing can finish the sweep.
        with injected(f"fabric.worker.stall@PC_X32*/hmmer/1#1|secs={stall_secs}"):
            with _fabric(
                runner, n_workers=2, heartbeat_timeout=stall_secs * 2
            ) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        elapsed = time.perf_counter() - start
        assert elapsed < stall_secs / 2  # nobody waited out the stall
        fabric = report["resilience"]["fabric"]
        assert fabric["stolen"] >= 1
        assert fabric["timeouts"] == 0 and fabric["dead"] == 0
        assert _strip(report) == _strip(golden)

    def test_heartbeat_silence_reclaims_and_heals(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "h")
        # Worker 0 goes fully dark: its heartbeats stall forever and its
        # first gob cell hangs. The coordinator must declare it dead on
        # heartbeat timeout, reclaim the lease, and re-dispatch.
        plan = (
            "fabric.worker.stall@heartbeat/0/*|secs=60;"
            "fabric.worker.stall@*/gob/1#1|secs=60"
        )
        with injected(plan):
            coordinator = FabricCoordinator(
                runner,
                spawn=0,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.5,
                startup_timeout=30.0,
            )
            host, port = coordinator.start()
            threads = [_start_worker(host, port)]
            try:
                # Let worker 0 join (and claim the first lease) before a
                # healthy worker 1 shows up to absorb the reclaim.
                deadline = time.time() + 10
                while (
                    coordinator.counters["workers_joined"] < 1
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
                assert coordinator.counters["workers_joined"] >= 1
                timer = threading.Timer(
                    0.4, lambda: threads.append(_start_worker(host, port))
                )
                timer.start()
                report = run_sweep(
                    _sweep(), runner, executor=FabricExecutor(coordinator)
                )
                timer.join(timeout=5)
            finally:
                coordinator.close()
        fabric = report["resilience"]["fabric"]
        assert fabric["timeouts"] >= 1
        assert fabric["dead"] >= 1
        assert fabric["reclaimed"] >= 1
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)

    def test_exhausted_retries_quarantine_not_abort(self, tmp_path):
        runner = _runner(tmp_path, "q")
        # Both P_X16/gob cells crash on every attempt, on every worker.
        with injected("fabric.worker.crash@P_X16*/gob/*"):
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                report = run_sweep(
                    _sweep(),
                    runner,
                    retry=RetryPolicy(attempts=2, backoff=0.0),
                    executor=executor,
                )
        quarantined = report["resilience"]["quarantined"]
        assert {
            (q["scheme"].split(":")[0], q["benchmark"]) for q in quarantined
        } == {("P_X16", "gob")}
        assert all(q["attempts"] == 2 for q in quarantined)
        assert all("InjectedFault" in q["error"] for q in quarantined)
        # The healthy cells all completed despite the quarantine.
        assert report["resilience"]["fabric"]["errors"] >= 2

    def test_no_live_worker_is_a_clear_fabric_error(self, tmp_path):
        runner = _runner(tmp_path, "n")
        coordinator = FabricCoordinator(
            runner, spawn=0, heartbeat_interval=0.05, startup_timeout=0.3
        )
        coordinator.start()
        try:
            with pytest.raises(FabricError, match="no live fabric worker"):
                run_sweep(
                    _sweep(), runner, executor=FabricExecutor(coordinator)
                )
        finally:
            coordinator.close()


class TestFabricResume:
    def test_local_interrupt_resumes_on_the_fabric(self, tmp_path):
        """A journal written locally finishes on the fabric, bit-identically."""
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        ckpt_path = tmp_path / "fabric.ckpt.jsonl"
        with injected("sweep.interrupt@*#3"):
            with pytest.raises(SweepInterrupted):
                run_sweep(
                    _sweep(), _runner(tmp_path, "c"), checkpoint=ckpt_path
                )
        # Cold caches: the journal, not the result cache, supplies the
        # finished cells; the fabric replays only the remainder.
        runner = _runner(tmp_path, "c2")
        with _fabric(runner, n_workers=2) as (coordinator, executor):
            resumed = run_sweep(
                _sweep(),
                runner,
                checkpoint=ckpt_path,
                resume=True,
                executor=executor,
            )
        assert resumed["resilience"]["resumed"] == 3
        fabric = resumed["resilience"]["fabric"]
        assert fabric["completed"] == len(golden["cells"]) - 3 + len(BENCHES)
        assert _strip(resumed) == _strip(golden)
        assert sweep_table(resumed) == sweep_table(golden)

    def test_fabric_interrupt_resumes_locally(self, tmp_path):
        """The reverse topology change: fabric journal, local resume."""
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        ckpt_path = tmp_path / "fabric.ckpt.jsonl"
        runner = _runner(tmp_path, "c")
        with injected("sweep.interrupt@*#3"):
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                with pytest.raises(SweepInterrupted):
                    run_sweep(
                        _sweep(),
                        runner,
                        checkpoint=ckpt_path,
                        executor=executor,
                    )
        resumed = run_sweep(
            _sweep(),
            _runner(tmp_path, "c2"),
            checkpoint=ckpt_path,
            resume=True,
        )
        assert resumed["resilience"]["resumed"] == 3
        assert _strip(resumed) == _strip(golden)

    def test_tampered_order_header_refuses_resume(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt.jsonl"
        runner = _runner(tmp_path, "t")
        with injected("sweep.interrupt@*#3"):
            with pytest.raises(SweepInterrupted):
                run_sweep(_sweep(), runner, checkpoint=ckpt_path)
        lines = ckpt_path.read_text("utf-8").splitlines()
        header = json.loads(lines[0])
        assert "order" in header  # new journals always stamp the digest
        header["order"] = "0" * len(header["order"])
        ckpt_path.write_text(
            "\n".join([json.dumps(header, sort_keys=True)] + lines[1:]) + "\n",
            "utf-8",
        )
        with pytest.raises(ConfigurationError, match="cell ordering"):
            run_sweep(_sweep(), runner, checkpoint=ckpt_path, resume=True)


class TestFabricCli:
    def test_fabric_zero_without_connect_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--fabric", "0"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_fabric_requires_a_count(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--fabric", "two"]) == 2

    def test_serve_worker_usage_errors(self, capsys):
        from repro.cli import main

        assert main(["fabric"]) == 2
        assert main(["fabric", "serve-worker"]) == 2
        assert main(["fabric", "serve-worker", "--connect", "nohostport"]) == 2
        assert "fabric" in capsys.readouterr().err

    def test_serve_worker_unreachable_coordinator(self, capsys):
        from repro.cli import main

        # Grab a port that is certainly closed right now.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(
            [
                "fabric",
                "serve-worker",
                f"--connect=127.0.0.1:{port}",
                "--timeout",
                "0.5",
            ]
        )
        assert rc == 2
        assert "fabric error" in capsys.readouterr().err


@pytest.mark.slow
class TestSpawnedWorkers:
    def test_worker_process_death_respawns_and_heals(
        self, tmp_path, monkeypatch
    ):
        """Real worker processes: one hard-exits mid-cell, fabric heals.

        The plan rides the environment so only the spawned processes
        install it (``exit`` in a thread worker would kill pytest).
        """
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        monkeypatch.setenv("REPRO_FAULTS", "fabric.worker.exit@*/gob/1#1")
        runner = _runner(tmp_path, "k")
        coordinator = FabricCoordinator(runner, spawn=2)
        coordinator.start()
        try:
            report = run_sweep(
                _sweep(), runner, executor=FabricExecutor(coordinator)
            )
        finally:
            coordinator.close()
        fabric = report["resilience"]["fabric"]
        assert fabric["dead"] >= 1
        assert fabric["respawned"] >= 1
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)
