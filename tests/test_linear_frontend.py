"""Non-recursive (Phantom-style) Frontend."""

import pytest

from repro.backend.ops import Op
from repro.config import OramConfig
from repro.errors import ConfigurationError
from repro.frontend.linear import LinearFrontend
from repro.utils.rng import DeterministicRng


@pytest.fixture
def frontend(small_config):
    return LinearFrontend(small_config, DeterministicRng(1))


class TestFunctional:
    def test_fresh_read_is_zero(self, frontend, small_config):
        assert frontend.read(5) == bytes(small_config.block_bytes)

    def test_write_read(self, frontend, small_config):
        payload = b"\x99" * small_config.block_bytes
        frontend.write(5, payload)
        assert frontend.read(5) == payload

    def test_distinct_addresses_independent(self, frontend, small_config):
        a = b"\x01" * small_config.block_bytes
        b = b"\x02" * small_config.block_bytes
        frontend.write(1, a)
        frontend.write(2, b)
        assert frontend.read(1) == a
        assert frontend.read(2) == b

    def test_shadow_consistency(self, small_config):
        frontend = LinearFrontend(small_config, DeterministicRng(4))
        rng = DeterministicRng(9)
        shadow = {}
        for step in range(400):
            addr = rng.randrange(small_config.num_blocks)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * small_config.block_bytes
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                expected = shadow.get(addr, bytes(small_config.block_bytes))
                assert frontend.read(addr) == expected

    def test_write_requires_full_block(self, frontend):
        with pytest.raises(ValueError):
            frontend.write(0, b"short")

    def test_backend_ops_rejected(self, frontend):
        with pytest.raises(ConfigurationError):
            frontend.access(0, Op.READRMV)


class TestAccounting:
    def test_one_tree_access_per_request(self, frontend):
        result = frontend.access(3, Op.READ)
        assert result.tree_accesses == 1
        assert result.posmap_tree_accesses == 0

    def test_no_posmap_traffic(self, frontend):
        for addr in range(10):
            frontend.read(addr)
        assert frontend.posmap_bytes_moved == 0
        assert frontend.data_bytes_moved > 0

    def test_onchip_posmap_size_scales_with_n(self):
        """The Phantom scaling problem: N*L bits on-chip (§1.1)."""
        small = LinearFrontend(OramConfig(num_blocks=256), DeterministicRng(0))
        large = LinearFrontend(OramConfig(num_blocks=4096), DeterministicRng(0))
        assert large.onchip_posmap_bytes > 8 * small.onchip_posmap_bytes
