"""Encrypted tree storage: roundtrips, schemes, and the adversary surface."""

import pytest

from repro.config import OramConfig
from repro.crypto.pad import PadGenerator
from repro.storage.block import Block
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme


@pytest.fixture
def enc_config():
    return OramConfig(num_blocks=64, block_bytes=32, mac_bytes=8)


@pytest.fixture
def pad():
    return PadGenerator(b"storage-test-key")


@pytest.mark.parametrize(
    "scheme", [EncryptionScheme.GLOBAL_SEED, EncryptionScheme.BUCKET_SEED]
)
class TestRoundtrip:
    def test_blocks_survive_write_read(self, enc_config, pad, scheme):
        storage = EncryptedTreeStorage(enc_config, pad, scheme)
        path = storage.read_path(3)
        path[0][1].add(Block(9, 3, bytes(32), b"\x07" * 8))
        storage.write_path(3)
        again = storage.read_path(3)
        found = again[0][1].find(9)
        assert found is not None
        assert found.leaf == 3
        assert found.mac == b"\x07" * 8

    def test_empty_path_roundtrip(self, enc_config, pad, scheme):
        storage = EncryptedTreeStorage(enc_config, pad, scheme)
        path = storage.read_path(0)
        assert all(len(bucket) == 0 for _, bucket in path)

    def test_write_requires_matching_read(self, enc_config, pad, scheme):
        storage = EncryptedTreeStorage(enc_config, pad, scheme)
        storage.read_path(1)
        with pytest.raises(RuntimeError):
            storage.write_path(2)

    def test_byte_accounting(self, enc_config, pad, scheme):
        storage = EncryptedTreeStorage(enc_config, pad, scheme)
        storage.read_path(0)
        storage.write_path(0)
        assert storage.bytes_moved == 2 * (enc_config.levels + 1) * enc_config.bucket_bytes

    def test_size_validation_on_tamper(self, enc_config, pad, scheme):
        storage = EncryptedTreeStorage(enc_config, pad, scheme)
        with pytest.raises(ValueError):
            storage.tamper_image(0, b"short")


class TestCiphertextProperties:
    def test_images_are_not_plaintext(self, enc_config, pad):
        """Bucket contents must not appear in the raw image."""
        storage = EncryptedTreeStorage(enc_config, pad)
        marker = b"\xAB" * 32
        path = storage.read_path(0)
        path[-1][1].add(Block(1, 0, marker, b"\x00" * 8))
        storage.write_path(0)
        leaf_index = storage.path_indices(0)[-1]
        assert marker not in storage.raw_image(leaf_index)

    def test_reencryption_changes_ciphertext(self, enc_config, pad):
        """Writing identical contents must still produce a fresh image."""
        storage = EncryptedTreeStorage(enc_config, pad)
        storage.read_path(0)
        storage.write_path(0)
        first = storage.raw_image(0)
        storage.read_path(0)
        storage.write_path(0)
        assert storage.raw_image(0) != first

    def test_global_seed_monotone(self, enc_config, pad):
        storage = EncryptedTreeStorage(enc_config, pad, EncryptionScheme.GLOBAL_SEED)
        before = storage.global_seed
        storage.read_path(0)
        storage.write_path(0)
        assert storage.global_seed > before

    def test_bucket_seed_stored_in_plaintext(self, enc_config, pad):
        """Under the [26] scheme the seed field is adversary-readable."""
        storage = EncryptedTreeStorage(enc_config, pad, EncryptionScheme.BUCKET_SEED)
        storage.read_path(0)
        storage.write_path(0)
        seed = int.from_bytes(storage.raw_image(0)[:8], "little")
        assert seed >= 1

    def test_occupancy_counts_blocks(self, enc_config, pad):
        storage = EncryptedTreeStorage(enc_config, pad)
        path = storage.read_path(2)
        path[0][1].add(Block(1, 2, bytes(32), bytes(8)))
        path[1][1].add(Block(2, 2, bytes(32), bytes(8)))
        storage.write_path(2)
        assert storage.occupancy() == 2
