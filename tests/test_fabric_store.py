"""SharedStore + content-addressed key properties backing the fabric.

The fabric's correctness leans on two storage facts: canonical cell keys
are injective over distinct cell identities (so content-addressing never
aliases two different cells), and concurrent same-key writers — two
workers racing one stolen cell — leave exactly one valid, readable entry
behind. Both are proven here, plus the SharedStore adapter surface.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.store import SharedStore
from repro.sim.metrics import SimResult
from repro.sim.result_cache import ResultCache
from repro.sim.runner import SimulationRunner


def _runner(**kw) -> SimulationRunner:
    kw.setdefault("misses_per_benchmark", 100)
    kw.setdefault("cache_dir", None)
    kw.setdefault("result_cache_dir", None)
    return SimulationRunner(**kw)


# One runner per distinct (seed, misses) pair; construction is cheap but
# hypothesis calls this thousands of times.
_RUNNERS = {}


def _runner_for(seed: int, misses: int) -> SimulationRunner:
    key = (seed, misses)
    if key not in _RUNNERS:
        _RUNNERS[key] = _runner(seed=seed, misses_per_benchmark=misses)
    return _RUNNERS[key]


class TestKeyInjectivity:
    """Distinct canonical cell identities always get distinct keys."""

    @settings(max_examples=200, deadline=None)
    @given(
        scheme=st.sampled_from(["P_X16", "PC_X32", "R_X8"]),
        bench=st.sampled_from(["gob", "mcf", "hmmer"]),
        plb=st.sampled_from([4096, 8192, 16384, 65536]),
        seed=st.sampled_from([1, 2]),
        misses=st.sampled_from([100, 200]),
    )
    def test_result_keys_injective_over_cell_identity(
        self, scheme, bench, plb, seed, misses
    ):
        runner = _runner_for(seed, misses)
        spec, label = runner.sized_spec(scheme, bench, plb_capacity_bytes=plb)
        identity = (spec.canonical(), label, bench, seed, misses)
        key = runner.result_key(scheme, bench, plb_capacity_bytes=plb)
        seen = getattr(type(self), "_seen", None)
        if seen is None:
            seen = type(self)._seen = {}
        if key in seen:
            assert seen[key] == identity, (
                f"key collision: {identity} and {seen[key]} share {key}"
            )
        else:
            assert identity not in seen.values()
            seen[key] = identity

    def test_insecure_keys_distinct_from_cells(self):
        runner = _runner()
        assert runner.result_key("insecure", "gob") != runner.result_key(
            "P_X16", "gob"
        )
        assert runner.result_key("insecure", "gob") != runner.result_key(
            "insecure", "mcf"
        )

    def test_label_is_part_of_the_identity(self):
        """Two spellings of one config occupy distinct entries."""
        runner = _runner()
        assert runner.result_key(
            "PC_X32", "gob", plb_capacity_bytes=8192
        ) != runner.result_key("PC_X32:plb=8KiB", "gob")


class TestConcurrentWriters:
    def test_same_key_racers_leave_one_valid_entry(self, tmp_path):
        """N threads storing one key concurrently: one readable entry, no tmp."""
        cache = ResultCache(tmp_path / "results")
        result = SimResult(
            benchmark="gob",
            scheme="PC_X32",
            cycles=123.5,
            instructions=1000,
            llc_misses=100,
            oram_accesses=100,
            tree_accesses=150,
        )
        barrier = threading.Barrier(8)
        errors = []

        def write():
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    assert cache.store("samekey", result)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert cache.keys() == ["samekey"]
        loaded = cache.load("samekey")
        assert loaded == result
        leftovers = [
            p for p in (tmp_path / "results").iterdir() if ".tmp." in p.name
        ]
        assert leftovers == []


class TestSharedStore:
    def test_ephemeral_when_runner_caches_disabled(self):
        runner = _runner()
        store = SharedStore.for_runner(runner)
        try:
            stats = store.stats()
            assert stats["ephemeral"]
            assert stats["traces"] == 0 and stats["results"] == 0
            attached = store.attach(runner)
            assert attached.trace_cache.root == store.trace_cache.root
            assert attached.result_cache.root == store.result_cache.root
        finally:
            store.close()
        # close() releases the temp directories.
        assert not store.trace_cache.root.exists()

    def test_colocates_with_runner_caches(self, tmp_path):
        runner = _runner(
            cache_dir=tmp_path / "traces", result_cache_dir=tmp_path / "results"
        )
        store = SharedStore.for_runner(runner)
        try:
            assert not store.stats()["ephemeral"]
            assert store.trace_cache.root == runner.trace_cache.root
            assert store.result_cache.root == runner.result_cache.root
        finally:
            store.close()
        # A store over caller-owned directories must not delete them.
        runner.trace(  # populate something to prove the dirs still work
            "gob"
        )
        assert store.trace_keys()

    def test_results_visible_through_store_inventory(self, tmp_path):
        runner = _runner(
            cache_dir=tmp_path / "traces", result_cache_dir=tmp_path / "results"
        )
        store = SharedStore.for_runner(runner)
        key = runner.result_key("P_X16", "gob")
        assert key not in store
        result = runner.run_one("P_X16", "gob")
        assert key in store
        assert store.load_result(key) == result
        assert store.stats()["results"] == 1

    def test_attach_preserves_runner_identity(self, tmp_path):
        """Attaching only moves the caches; cell keys are unchanged."""
        runner = _runner()
        store = SharedStore.for_runner(runner)
        try:
            attached = store.attach(runner)
            assert attached.result_key("P_X16", "gob") == runner.result_key(
                "P_X16", "gob"
            )
            assert attached.seed == runner.seed
            assert attached.misses == runner.misses
        finally:
            store.close()
