"""Fabric RPC hardening: timeouts, reconnects, and worker quarantine.

Chaos-lockstep extensions of ``test_fabric.py`` for the overload control
plane: every coordinator↔worker call is bounded by an
:class:`~repro.resilience.RpcPolicy` deadline, a transiently severed
worker session auto-reconnects under a stable identity, and the
coordinator's per-identity circuit breaker quarantines identities that
flap. The acceptance bar is unchanged: a sweep that suffered timeouts,
flaps and reconnects produces a report bit-identical to the fault-free
golden, with only the ``resilience`` accounting block differing.

Thread-worker caveat (same as ``test_fabric.py``): plans here must never
use the ``exit`` action, and flap/timeout injections key on roles or
index/session pairs so exactly the intended edge is severed.
"""

import contextlib
import socket
import threading
import time

import pytest

from repro.fabric import (
    FabricCoordinator,
    FabricExecutor,
    FabricWorker,
    recv_message,
    send_message,
)
from repro.fabric.protocol import RpcTimeout
from repro.faults import injected
from repro.resilience import CircuitBreaker, RpcPolicy
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

BENCHES = ("gob", "hmmer")
MISSES = 150


def _runner(tmp_path, tag, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / tag / "traces",
        result_cache_dir=tmp_path / tag / "results",
        **kw,
    )


def _sweep() -> SweepSpec:
    return SweepSpec.from_args(
        schemes=["P_X16", "PC_X32"],
        grid={"plb_capacity_bytes": ["4KiB", "8KiB"]},
        benchmarks=BENCHES,
    )


def _strip(report):
    clone = dict(report)
    assert "resilience" in clone
    clone.pop("resilience")
    return clone


def _start_worker(host, port):
    thread = threading.Thread(
        target=FabricWorker(host, port).run, daemon=True
    )
    thread.start()
    return thread


@contextlib.contextmanager
def _fabric(runner, n_workers=2, **coord_kw):
    coord_kw.setdefault("heartbeat_interval", 0.05)
    coord_kw.setdefault("startup_timeout", 30.0)
    coordinator = FabricCoordinator(runner, spawn=0, **coord_kw)
    host, port = coordinator.start()
    threads = [_start_worker(host, port) for _ in range(n_workers)]
    try:
        yield coordinator, FabricExecutor(coordinator)
    finally:
        coordinator.close()
        for thread in threads:
            thread.join(timeout=5)


class TestRpcTimeouts:
    def test_real_socket_timeout_surfaces_as_rpc_timeout(self):
        a, b = socket.socketpair()
        try:
            b.settimeout(None)
            with pytest.raises(RpcTimeout):
                recv_message(b, timeout=0.05)
            # The per-call deadline is scoped: the socket's prior
            # (blocking) timeout is restored afterwards.
            assert b.gettimeout() is None
        finally:
            a.close()
            b.close()

    def test_rpc_timeout_is_countable_but_handled_as_disconnect(self):
        from repro.fabric.protocol import ProtocolError

        assert issubclass(RpcTimeout, ProtocolError)
        a, b = socket.socketpair()
        try:
            with injected("rpc.timeout.crash@peer/send/need#1") as plan:
                with pytest.raises(RpcTimeout):
                    send_message(a, {"type": "need"})
            assert plan.fired
        finally:
            a.close()
            b.close()

    def test_coordinator_lease_timeout_heals_bit_identical(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "t")
        # The first lease the coordinator sends times out; the worker's
        # session is severed, it reconnects, and the lease re-dispatches.
        with injected("rpc.timeout.crash@coordinator/send/lease#1") as plan:
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        assert plan.fired
        fabric = report["resilience"]["fabric"]
        assert fabric["rpc_timeouts"] >= 1
        assert fabric["dead"] >= 1
        assert fabric["reconnects"] >= 1
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)

    def test_worker_side_timeout_triggers_reconnect(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "wt")
        with injected("rpc.timeout.crash@worker/send/need#1") as plan:
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        assert plan.fired
        assert report["resilience"]["fabric"]["reconnects"] >= 1
        assert _strip(report) == _strip(golden)


class TestWorkerReconnect:
    def test_idents_distinguish_workers_sharing_a_pid(self):
        a = FabricWorker("127.0.0.1", 1)
        b = FabricWorker("127.0.0.1", 1)
        assert a.ident != b.ident
        assert a.ident.split(".")[0] == b.ident.split(".")[0]  # same pid

    def test_flapped_session_reconnects_and_heals(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "f")
        # Whichever worker lands index 0 flaps right after its first
        # configuration, then rejoins as a fresh session.
        with injected("rpc.flap.crash@0/1#1") as plan:
            with _fabric(runner, n_workers=2) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        assert plan.fired
        fabric = report["resilience"]["fabric"]
        assert fabric["dead"] >= 1
        assert fabric["reconnects"] >= 1
        assert _strip(report) == _strip(golden)
        assert sweep_table(report) == sweep_table(golden)

    def test_repeated_flaps_trip_the_breaker(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        runner = _runner(tmp_path, "b")
        with injected("rpc.flap.crash@0/1#1"):
            with _fabric(
                runner, n_workers=2, breaker_threshold=1
            ) as (coordinator, executor):
                report = run_sweep(_sweep(), runner, executor=executor)
        fabric = report["resilience"]["fabric"]
        assert fabric["breaker_trips"] >= 1
        assert _strip(report) == _strip(golden)


class TestQuarantine:
    def test_tripped_identity_is_refused_at_hello(self, tmp_path):
        runner = _runner(tmp_path, "q")
        coordinator = FabricCoordinator(
            runner, spawn=0, heartbeat_interval=0.05, startup_timeout=5.0
        )
        host, port = coordinator.start()
        try:
            worker = FabricWorker(host, port)
            # Pre-trip the breaker for exactly this worker's identity,
            # as repeated session failures would.
            breaker = CircuitBreaker(threshold=1, cooldown=600.0)
            breaker.record_failure()
            coordinator._breakers[worker.ident] = breaker
            assert worker.run() == 0  # refused cleanly, no config ever
            assert worker.cells_executed == 0
            assert coordinator.counters["quarantined_workers"] == 1
            assert coordinator.counters["workers_joined"] == 0
        finally:
            coordinator.close()

    def test_quarantine_lifts_after_cooldown(self, tmp_path):
        runner = _runner(tmp_path, "q2")
        coordinator = FabricCoordinator(runner, spawn=0, startup_timeout=5.0)
        host, port = coordinator.start()
        try:
            worker = FabricWorker(host, port)
            breaker = CircuitBreaker(threshold=1, cooldown=0.05)
            breaker.record_failure()
            coordinator._breakers[worker.ident] = breaker
            time.sleep(0.1)  # cooldown elapses: half-open probe admitted
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            deadline = time.time() + 10
            while (
                coordinator.counters["workers_joined"] < 1
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert coordinator.counters["workers_joined"] == 1
        finally:
            coordinator.close()
            thread.join(timeout=5)


class TestRpcPolicyPlumbing:
    def test_worker_reads_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONNECT_RETRIES", "2")
        monkeypatch.setenv("REPRO_RPC_TIMEOUT", "7.5")
        worker = FabricWorker("127.0.0.1", 1)
        assert worker.rpc.connect_attempts == 2
        assert worker.rpc.timeout == 7.5

    def test_unreachable_coordinator_respects_bounded_retries(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = FabricWorker(
            "127.0.0.1",
            port,
            connect_timeout=0.5,
            rpc=RpcPolicy(connect_attempts=2, backoff=0.01, seed=1),
        )
        from repro.fabric.protocol import ProtocolError

        start = time.perf_counter()
        with pytest.raises(ProtocolError, match="2 attempt"):
            worker.run()
        assert time.perf_counter() - start < 5.0

    def test_coordinator_send_deadlines_use_policy(self, tmp_path):
        runner = _runner(tmp_path, "p")
        coordinator = FabricCoordinator(
            runner, spawn=0, rpc=RpcPolicy(timeout=12.5)
        )
        try:
            assert coordinator._rpc.timeout == 12.5
            counters = coordinator.stats()
            for key in (
                "rpc_timeouts", "reconnects", "breaker_trips",
                "quarantined_workers",
            ):
                assert counters[key] == 0
        finally:
            coordinator.store.close()
