"""Property-based tests on the Backend with hypothesis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng

# A step is (addr, write?, payload_byte).
STEP = st.tuples(
    st.integers(min_value=0, max_value=63),
    st.booleans(),
    st.integers(min_value=0, max_value=255),
)


def build(seed=0):
    config = OramConfig(num_blocks=64, block_bytes=16)
    backend = PathOramBackend(config, TreeStorage(config), DeterministicRng(seed))
    return config, backend


@settings(max_examples=40, deadline=None)
@given(st.lists(STEP, min_size=1, max_size=60), st.integers(min_value=0, max_value=2**16))
def test_backend_matches_shadow_memory(steps, seed):
    """Any read/write sequence behaves like an ideal RAM."""
    config, backend = build(seed)
    rng = DeterministicRng(seed ^ 0x1234)
    posmap = {}
    shadow = {}
    zero = bytes(config.block_bytes)
    for addr, is_write, byte in steps:
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        if is_write:
            payload = bytes([byte]) * config.block_bytes

            def write(blk, payload=payload):
                blk.data = payload

            backend.access(Op.WRITE, addr, leaf, new_leaf, update=write)
            shadow[addr] = payload
        else:
            block = backend.access(Op.READ, addr, leaf, new_leaf)
            assert block.data == shadow.get(addr, zero)


@settings(max_examples=30, deadline=None)
@given(st.lists(STEP, min_size=1, max_size=50), st.integers(min_value=0, max_value=2**16))
def test_block_conservation(steps, seed):
    """Total real blocks = distinct addresses ever touched."""
    config, backend = build(seed)
    rng = DeterministicRng(seed ^ 0x9999)
    posmap = {}
    touched = set()
    for addr, is_write, _ in steps:
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        backend.access(Op.READ, addr, leaf, new_leaf)
        touched.add(addr)
    total = backend.stash_occupancy() + backend.storage.occupancy()
    assert total == len(touched)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60))
def test_invariant_holds_under_any_sequence(addrs):
    """Every mapped block is on its path or in the stash, always."""
    config, backend = build(3)
    rng = DeterministicRng(42)
    posmap = {}
    for addr in addrs:
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        backend.access(Op.READ, addr, leaf, new_leaf)
    for addr, leaf in posmap.items():
        if backend.stash.contains(addr):
            continue
        on_path = any(
            backend.storage.bucket_at(i).find(addr) is not None
            for i in backend.storage.path_indices(leaf)
        )
        assert on_path


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=5, max_size=40))
def test_readrmv_append_cycle_preserves_contents(addrs):
    """Any block can be removed and re-appended without data loss."""
    config, backend = build(8)
    rng = DeterministicRng(77)
    posmap = {}
    for step, addr in enumerate(addrs):
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        payload = bytes([step % 256]) * config.block_bytes

        def write(blk, payload=payload):
            blk.data = payload

        backend.access(Op.WRITE, addr, leaf, new_leaf, update=write)
        # Immediately cycle it through readrmv/append (PLB-style).
        cycle_leaf = backend.random_leaf()
        block = backend.access(Op.READRMV, addr, new_leaf, cycle_leaf)
        assert block.data == payload
        backend.access(Op.APPEND, addr, append_block=block)
        posmap[addr] = cycle_leaf
