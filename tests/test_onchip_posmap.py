"""On-chip PosMap in leaf and counter modes."""

import pytest

from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.frontend.posmap import OnChipPosMap
from repro.utils.rng import DeterministicRng


class TestLeafMode:
    def _posmap(self):
        return OnChipPosMap(entries=16, levels=8, rng=DeterministicRng(1))

    def test_first_touch_gets_uniform_leaf(self):
        pm = self._posmap()
        leaf, new_leaf, counter = pm.lookup_and_remap(3, 3)
        assert 0 <= leaf < 256
        assert 0 <= new_leaf < 256
        assert counter == 0

    def test_remap_persists(self):
        pm = self._posmap()
        _, new_leaf, _ = pm.lookup_and_remap(3, 3)
        current, _, _ = pm.lookup_and_remap(3, 3)
        assert current == new_leaf

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self._posmap().lookup_and_remap(16, 16)

    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            OnChipPosMap(entries=4, levels=4, mode=OnChipPosMap.MODE_LEAF)

    def test_peek_untouched_raises(self):
        with pytest.raises(KeyError):
            self._posmap().peek_leaf(5)

    def test_peek_after_touch(self):
        pm = self._posmap()
        _, new_leaf, _ = pm.lookup_and_remap(5, 5)
        assert pm.peek_leaf(5) == new_leaf

    def test_size_bytes_uses_leaf_width(self):
        pm = OnChipPosMap(entries=1024, levels=16, rng=DeterministicRng(0))
        assert pm.size_bytes == 1024 * 16 // 8


class TestCounterMode:
    def _posmap(self):
        return OnChipPosMap(
            entries=16,
            levels=8,
            mode=OnChipPosMap.MODE_COUNTER,
            prf=Prf(b"onchip-key"),
        )

    def test_counter_increments(self):
        pm = self._posmap()
        pm.lookup_and_remap(2, 0xBEEF)
        pm.lookup_and_remap(2, 0xBEEF)
        assert pm.counter(2) == 2

    def test_leaves_follow_prf(self):
        pm = self._posmap()
        prf = pm.prf
        leaf, new_leaf, counter = pm.lookup_and_remap(2, 0xBEEF)
        assert leaf == prf.leaf_for(0xBEEF, 0, 8)
        assert new_leaf == prf.leaf_for(0xBEEF, 1, 8)
        assert counter == 1

    def test_lookup_chain_consistent(self):
        """The leaf returned now must equal the 'current' leaf next time."""
        pm = self._posmap()
        _, expected, _ = pm.lookup_and_remap(7, 42)
        current, _, _ = pm.lookup_and_remap(7, 42)
        assert current == expected

    def test_requires_prf(self):
        with pytest.raises(ConfigurationError):
            OnChipPosMap(entries=4, levels=4, mode=OnChipPosMap.MODE_COUNTER)

    def test_counter_in_leaf_mode_rejected(self):
        pm = OnChipPosMap(entries=4, levels=4, rng=DeterministicRng(0))
        with pytest.raises(ConfigurationError):
            pm.counter(0)

    def test_size_bytes_uses_counter_width(self):
        pm = OnChipPosMap(
            entries=1024, levels=16, mode=OnChipPosMap.MODE_COUNTER, prf=Prf(b"k")
        )
        assert pm.size_bytes == 1024 * 8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            OnChipPosMap(entries=4, levels=4, mode="magic")
