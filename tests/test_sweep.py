"""Sweep engine: grid expansion, determinism (serial/parallel, warm/cold)."""

import json

import pytest

import repro.sim.runner as runner_mod
from repro.errors import SpecError
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, parse_grid_axis, run_sweep, sweep_table
from repro.spec import get_spec

BENCHES = ("gob", "hmmer")
MISSES = 150


def tiny_sweep() -> SweepSpec:
    """The acceptance grid: PLB capacity x X (via two base schemes)."""
    return SweepSpec.from_args(
        schemes=["P_X16", "PC_X32"],
        grid={"plb_capacity_bytes": ["4KiB", "8KiB"]},
        benchmarks=BENCHES,
    )


def _runner(tmp_path, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / "traces",
        result_cache_dir=tmp_path / "results",
        **kw,
    )


class TestGridParsing:
    def test_axis_with_alias_and_sizes(self):
        assert parse_grid_axis("plb=4KiB,8KiB") == (
            "plb_capacity_bytes", (4096, 8192)
        )

    def test_axis_rejects_missing_values(self):
        with pytest.raises(SpecError, match="no values"):
            parse_grid_axis("plb=")

    def test_axis_rejects_duplicates(self):
        with pytest.raises(SpecError, match="repeats"):
            parse_grid_axis("plb=4KiB,4096")

    def test_axis_rejects_unknown_field(self):
        with pytest.raises(SpecError, match="valid fields"):
            parse_grid_axis("frobnication=1,2")

    def test_axis_rejects_missing_equals(self):
        with pytest.raises(SpecError, match="field=value"):
            parse_grid_axis("plb")


class TestSweepSpec:
    def test_points_cartesian_order(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"plb_capacity_bytes": [4096, 8192], "plb_ways": [1, 2]},
        )
        labels = [label for label, _spec in sweep.points()]
        # Grid deltas render explicitly even at registry defaults
        # (plb_ways=1), so every axis value keeps its own row.
        assert labels == [
            "PC_X32:plb_capacity_bytes=4096,plb_ways=1",
            "PC_X32:plb_capacity_bytes=4096,plb_ways=2",
            "PC_X32:plb_capacity_bytes=8192,plb_ways=1",
            "PC_X32:plb_capacity_bytes=8192,plb_ways=2",
        ]

    def test_axis_value_at_registry_default_stays_pinned(self, tmp_path):
        """A grid value equal to the base's default must not be absorbed
        into runner sizing: onchip=1024 vs onchip=2048 (the PC_X32
        default) have to produce two genuinely different rows even though
        the runner's own sizing default is 1024."""
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"onchip": [1024, 2048]},
            benchmarks=["gob"],
        )
        labels = [label for label, _ in sweep.points()]
        assert labels == [
            "PC_X32:onchip_entries=1024",
            "PC_X32:onchip_entries=2048",
        ]
        runner = _runner(tmp_path)
        spec_small, _ = runner.sized_spec(labels[0], "gob")
        spec_large, _ = runner.sized_spec(labels[1], "gob")
        assert spec_small.onchip_entries == 1024
        assert spec_large.onchip_entries == 2048
        assert spec_small.canonical() != spec_large.canonical()

    def test_unknown_benchmark_fails_at_construction(self):
        with pytest.raises(SpecError, match="unknown benchmark"):
            SweepSpec.from_args(schemes=["PC_X32"], benchmarks=["nope"])

    def test_points_dedupe_identical_labels(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32", "PC_X32:plb=64KiB"],  # 64KiB == registry default
            grid={"plb_capacity_bytes": [4096]},
        )
        assert len(sweep.points()) == 1

    def test_empty_grid_yields_base_points(self):
        sweep = SweepSpec.from_args(schemes=["R_X8", "PC_X32"])
        assert [label for label, _ in sweep.points()] == ["R_X8", "PC_X32"]

    def test_scheme_objects_accepted(self):
        spec = get_spec("PIC_X32").with_(storage="array")
        sweep = SweepSpec.from_args(schemes=[spec])
        (label, point), = sweep.points()
        assert point == spec and "storage=array" in label

    def test_needs_a_scheme(self):
        with pytest.raises(SpecError, match="at least one"):
            SweepSpec.from_args(schemes=[])

    def test_unknown_scheme_fails_at_construction(self):
        with pytest.raises(SpecError, match="unknown scheme"):
            SweepSpec.from_args(schemes=["NOPE"])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecError, match="twice"):
            SweepSpec(
                schemes=("PC_X32",),
                grid=(
                    ("plb_capacity_bytes", (1024,)),
                    ("plb_capacity_bytes", (2048,)),
                ),
            )

    def test_alias_axis_key_rejected_on_direct_construction(self):
        with pytest.raises(SpecError, match="full field names"):
            SweepSpec(schemes=("PC_X32",), grid=(("plb", (1024,)),))


class TestRunSweep:
    def test_report_shape_and_slowdowns(self, tmp_path):
        report = run_sweep(tiny_sweep(), _runner(tmp_path))
        assert report["kind"] == "sweep"
        assert report["benchmarks"] == list(BENCHES)
        assert len(report["cells"]) == 4 * len(BENCHES)
        for cell in report["cells"]:
            assert cell["slowdown"] > 1.0  # ORAM never beats insecure DRAM
            assert cell["spec"]["plb_capacity_bytes"] in (4096, 8192)
        assert json.dumps(report)  # JSON-safe throughout

    def test_serial_and_parallel_reports_identical(self, tmp_path):
        # Distinct result caches so the parallel run really recomputes.
        serial = run_sweep(tiny_sweep(), _runner(tmp_path / "a"))
        parallel = run_sweep(tiny_sweep(), _runner(tmp_path / "b"), workers=3)
        assert serial == parallel

    def test_warm_cache_report_identical_and_replay_free(
        self, tmp_path, monkeypatch
    ):
        cold = run_sweep(tiny_sweep(), _runner(tmp_path))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("replay_trace called on a warm sweep")

        monkeypatch.setattr(runner_mod, "replay_trace", boom)
        warm = run_sweep(tiny_sweep(), _runner(tmp_path))
        # Resilience counters intentionally differ (executed vs from_cache);
        # every measured quantity must be identical.
        assert warm.pop("resilience")["from_cache"] > 0
        assert cold.pop("resilience")["executed"] > 0
        assert warm == cold

    def test_progress_streams_every_cell(self, tmp_path):
        seen = []
        run_sweep(
            tiny_sweep(),
            _runner(tmp_path),
            progress=lambda s, b, r, cached: seen.append((s, b)),
        )
        # 4 grid points x 2 benchmarks, plus the 2 insecure baselines.
        assert len(seen) == 4 * len(BENCHES) + len(BENCHES)

    def test_without_baselines_no_slowdown(self, tmp_path):
        report = run_sweep(
            tiny_sweep(), _runner(tmp_path), include_baselines=False
        )
        assert report["baselines"] == {}
        assert all("slowdown" not in cell for cell in report["cells"])

    def test_table_renders_all_points(self, tmp_path):
        report = run_sweep(tiny_sweep(), _runner(tmp_path))
        text = sweep_table(report)
        assert "geomean" in text
        for label in report["schemes"]:
            assert label in text


class TestBenchGrid:
    """Grid axes over benchmark parameters (miss budget, WSS)."""

    def test_parse_misses_axis(self):
        assert parse_grid_axis("misses=2000,8000") == ("misses", (2000, 8000))

    def test_parse_wss_axis_with_sizes(self):
        assert parse_grid_axis("wss=4MiB,16MiB") == (
            "wss", (4 << 20, 16 << 20)
        )

    def test_from_args_routes_bench_axes(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["plb=4KiB,8KiB", "misses=100,200", "wss=1MiB"],
            benchmarks=BENCHES,
        )
        assert sweep.grid == (("plb_capacity_bytes", (4096, 8192)),)
        assert sweep.bench_grid == (
            ("misses", (100, 200)), ("wss", (1 << 20,))
        )

    def test_from_args_mapping_routes_bench_axes(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"misses": ["100", 200], "wss": ["2MiB"]},
            benchmarks=BENCHES,
        )
        assert sweep.bench_grid == (
            ("misses", (100, 200)), ("wss", (2 << 20,))
        )

    def test_bench_points_cartesian_last_axis_fastest(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["misses=100,200", "wss=1MiB,2MiB"],
            benchmarks=BENCHES,
        )
        assert sweep.bench_points() == [
            {"misses": 100, "wss": 1 << 20},
            {"misses": 100, "wss": 2 << 20},
            {"misses": 200, "wss": 1 << 20},
            {"misses": 200, "wss": 2 << 20},
        ]

    def test_no_bench_axes_single_empty_combo(self):
        assert tiny_sweep().bench_points() == [{}]

    def test_names_for_derives_wss_names(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"], grid=["wss=1MiB"], benchmarks=("gob",)
        )
        assert sweep.names_for({"wss": 1 << 20}) == [f"gob@wss={1 << 20}"]
        assert sweep.names_for({}) == ["gob"]

    def test_wss_matching_base_keeps_name(self):
        from repro.workloads.spec import benchmark

        base_wss = benchmark("gob").wss_bytes
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"], grid=[f"wss={base_wss}"], benchmarks=("gob",)
        )
        assert sweep.names_for({"wss": base_wss}) == ["gob"]

    def test_bench_axis_rejects_zero(self):
        with pytest.raises(SpecError, match="positive integers"):
            parse_grid_axis("misses=0,100")

    def test_bench_axis_rejects_duplicates(self):
        with pytest.raises(SpecError, match="repeats a value"):
            parse_grid_axis("wss=1MiB,1048576")

    def test_duplicate_bench_axis_rejected(self):
        with pytest.raises(SpecError, match="appears twice"):
            SweepSpec(
                schemes=("PC_X32",),
                bench_grid=(("misses", (1,)), ("misses", (2,))),
            )

    def test_unknown_bench_axis_rejected_on_direct_construction(self):
        with pytest.raises(SpecError, match="unknown bench axis"):
            SweepSpec(schemes=("PC_X32",), bench_grid=(("budget", (1,)),))

    def test_run_sweep_expands_misses_axis(self, tmp_path):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"], grid=["misses=100,200"], benchmarks=("gob",)
        )
        report = run_sweep(sweep, _runner(tmp_path))
        assert [cell["misses"] for cell in report["cells"]] == [100, 200]
        assert report["grid"]["misses"] == [100, 200]
        # More budget, more simulated misses: results genuinely differ.
        by_misses = {c["misses"]: c["result"] for c in report["cells"]}
        assert by_misses[100]["llc_misses"] < by_misses[200]["llc_misses"]
        # Baselines are keyed per miss budget, never collapsed.
        assert set(report["baselines"]) == {
            "gob@misses=100", "gob@misses=200"
        }

    def test_run_sweep_expands_wss_axis(self, tmp_path):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"], grid=["wss=1MiB,4MiB"], benchmarks=("gob",)
        )
        report = run_sweep(sweep, _runner(tmp_path))
        names = [cell["benchmark"] for cell in report["cells"]]
        assert names == [f"gob@wss={1 << 20}", f"gob@wss={4 << 20}"]
        # A larger working set misses more per kilo-instruction.
        cells = report["cells"]
        assert cells[0]["result"]["mpki"] < cells[1]["result"]["mpki"]

    def test_bench_grid_composes_with_spec_grid(self, tmp_path):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["plb=4KiB,8KiB", "misses=100,200"],
            benchmarks=("gob",),
        )
        report = run_sweep(sweep, _runner(tmp_path))
        # 2 bench combos x 2 grid points x 1 benchmark.
        assert len(report["cells"]) == 4
        seen = {
            (c["misses"], c["spec"]["plb_capacity_bytes"])
            for c in report["cells"]
        }
        assert seen == {(100, 4096), (100, 8192), (200, 4096), (200, 8192)}
        text = sweep_table(report)
        assert "misses=100" in text and "misses=200" in text

    def test_bench_grid_serial_parallel_identical(self, tmp_path):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"], grid=["misses=100,200"], benchmarks=BENCHES
        )
        serial = run_sweep(sweep, _runner(tmp_path / "a"))
        parallel = run_sweep(sweep, _runner(tmp_path / "b"), workers=3)
        assert serial == parallel


class TestDerivedBenchmarks:
    def test_benchmark_accepts_derived_name(self):
        from repro.workloads.spec import benchmark

        derived = benchmark("mcf@wss=1048576")
        assert derived.wss_bytes == 1 << 20
        assert derived.name == "mcf@wss=1048576"
        assert derived.patterns == benchmark("mcf").patterns

    def test_scaled_benchmark_name_round_trips(self):
        from repro.workloads.spec import benchmark, scaled_benchmark_name

        name = scaled_benchmark_name("gob", 3 << 20)
        assert benchmark(name).wss_bytes == 3 << 20

    def test_scaled_benchmark_rejects_unknown_base(self):
        from repro.workloads.spec import scaled_benchmark_name

        with pytest.raises(KeyError):
            scaled_benchmark_name("nope", 1 << 20)

    def test_scaled_benchmark_rejects_bad_wss(self):
        from repro.workloads.spec import scaled_benchmark_name

        with pytest.raises(ValueError):
            scaled_benchmark_name("gob", 0)

    def test_unknown_derived_name_rejected(self):
        from repro.workloads.spec import benchmark

        with pytest.raises(KeyError):
            benchmark("gob@wss=banana")
        with pytest.raises(KeyError):
            benchmark("nope@wss=1024")

    def test_runner_sizes_for_derived_wss(self, tmp_path):
        runner = _runner(tmp_path)
        small, _ = runner.sized_spec("PC_X32", "gob@wss=1048576")
        large, _ = runner.sized_spec("PC_X32", "gob@wss=16777216")
        assert large.num_blocks > small.num_blocks


class TestRunnerDerive:
    def test_derive_overrides_misses_and_keeps_caches(self, tmp_path):
        runner = _runner(tmp_path)
        derived = runner.derive(misses_per_benchmark=42)
        assert derived.misses == 42
        assert derived.seed == runner.seed
        assert derived.trace_cache.root == runner.trace_cache.root
        assert derived.result_cache.root == runner.result_cache.root

    def test_derive_rejects_unknown_field(self, tmp_path):
        with pytest.raises(TypeError, match="unknown runner field"):
            _runner(tmp_path).derive(budget=3)


class TestReviewRegressions:
    """Pinned fixes from the PR-5 review pass."""

    def test_bench_grid_string_values_normalised_on_construction(self):
        sweep = SweepSpec(
            schemes=("PC_X32",), bench_grid=(("wss", ("4MiB",)),)
        )
        assert sweep.bench_grid == (("wss", (4 << 20,)),)
        assert sweep.bench_points() == [{"wss": 4 << 20}]
        assert sweep.names_for({"wss": 4 << 20})  # no ValueError

    def test_bench_grid_garbage_value_fails_at_construction(self):
        with pytest.raises(SpecError):
            SweepSpec(schemes=("PC_X32",), bench_grid=(("misses", ("lots",)),))

    def test_wss_axis_over_derived_benchmark_rebases(self):
        """A wss override replaces (never stacks on) an existing one."""
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["wss=2MiB"],
            benchmarks=(f"gob@wss={1 << 20}",),
        )
        assert sweep.names_for({"wss": 2 << 20}) == ["gob"]  # 2MiB == gob base
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["wss=4MiB"],
            benchmarks=(f"gob@wss={1 << 20}",),
        )
        assert sweep.names_for({"wss": 4 << 20}) == [f"gob@wss={4 << 20}"]
