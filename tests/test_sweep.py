"""Sweep engine: grid expansion, determinism (serial/parallel, warm/cold)."""

import json

import pytest

import repro.sim.runner as runner_mod
from repro.errors import SpecError
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, parse_grid_axis, run_sweep, sweep_table
from repro.spec import get_spec

BENCHES = ("gob", "hmmer")
MISSES = 150


def tiny_sweep() -> SweepSpec:
    """The acceptance grid: PLB capacity x X (via two base schemes)."""
    return SweepSpec.from_args(
        schemes=["P_X16", "PC_X32"],
        grid={"plb_capacity_bytes": ["4KiB", "8KiB"]},
        benchmarks=BENCHES,
    )


def _runner(tmp_path, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / "traces",
        result_cache_dir=tmp_path / "results",
        **kw,
    )


class TestGridParsing:
    def test_axis_with_alias_and_sizes(self):
        assert parse_grid_axis("plb=4KiB,8KiB") == (
            "plb_capacity_bytes", (4096, 8192)
        )

    def test_axis_rejects_missing_values(self):
        with pytest.raises(SpecError, match="no values"):
            parse_grid_axis("plb=")

    def test_axis_rejects_duplicates(self):
        with pytest.raises(SpecError, match="repeats"):
            parse_grid_axis("plb=4KiB,4096")

    def test_axis_rejects_unknown_field(self):
        with pytest.raises(SpecError, match="valid fields"):
            parse_grid_axis("frobnication=1,2")

    def test_axis_rejects_missing_equals(self):
        with pytest.raises(SpecError, match="field=value"):
            parse_grid_axis("plb")


class TestSweepSpec:
    def test_points_cartesian_order(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"plb_capacity_bytes": [4096, 8192], "plb_ways": [1, 2]},
        )
        labels = [label for label, _spec in sweep.points()]
        # Grid deltas render explicitly even at registry defaults
        # (plb_ways=1), so every axis value keeps its own row.
        assert labels == [
            "PC_X32:plb_capacity_bytes=4096,plb_ways=1",
            "PC_X32:plb_capacity_bytes=4096,plb_ways=2",
            "PC_X32:plb_capacity_bytes=8192,plb_ways=1",
            "PC_X32:plb_capacity_bytes=8192,plb_ways=2",
        ]

    def test_axis_value_at_registry_default_stays_pinned(self, tmp_path):
        """A grid value equal to the base's default must not be absorbed
        into runner sizing: onchip=1024 vs onchip=2048 (the PC_X32
        default) have to produce two genuinely different rows even though
        the runner's own sizing default is 1024."""
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"onchip": [1024, 2048]},
            benchmarks=["gob"],
        )
        labels = [label for label, _ in sweep.points()]
        assert labels == [
            "PC_X32:onchip_entries=1024",
            "PC_X32:onchip_entries=2048",
        ]
        runner = _runner(tmp_path)
        spec_small, _ = runner.sized_spec(labels[0], "gob")
        spec_large, _ = runner.sized_spec(labels[1], "gob")
        assert spec_small.onchip_entries == 1024
        assert spec_large.onchip_entries == 2048
        assert spec_small.canonical() != spec_large.canonical()

    def test_unknown_benchmark_fails_at_construction(self):
        with pytest.raises(SpecError, match="unknown benchmark"):
            SweepSpec.from_args(schemes=["PC_X32"], benchmarks=["nope"])

    def test_points_dedupe_identical_labels(self):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32", "PC_X32:plb=64KiB"],  # 64KiB == registry default
            grid={"plb_capacity_bytes": [4096]},
        )
        assert len(sweep.points()) == 1

    def test_empty_grid_yields_base_points(self):
        sweep = SweepSpec.from_args(schemes=["R_X8", "PC_X32"])
        assert [label for label, _ in sweep.points()] == ["R_X8", "PC_X32"]

    def test_scheme_objects_accepted(self):
        spec = get_spec("PIC_X32").with_(storage="array")
        sweep = SweepSpec.from_args(schemes=[spec])
        (label, point), = sweep.points()
        assert point == spec and "storage=array" in label

    def test_needs_a_scheme(self):
        with pytest.raises(SpecError, match="at least one"):
            SweepSpec.from_args(schemes=[])

    def test_unknown_scheme_fails_at_construction(self):
        with pytest.raises(SpecError, match="unknown scheme"):
            SweepSpec.from_args(schemes=["NOPE"])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecError, match="twice"):
            SweepSpec(
                schemes=("PC_X32",),
                grid=(
                    ("plb_capacity_bytes", (1024,)),
                    ("plb_capacity_bytes", (2048,)),
                ),
            )

    def test_alias_axis_key_rejected_on_direct_construction(self):
        with pytest.raises(SpecError, match="full field names"):
            SweepSpec(schemes=("PC_X32",), grid=(("plb", (1024,)),))


class TestRunSweep:
    def test_report_shape_and_slowdowns(self, tmp_path):
        report = run_sweep(tiny_sweep(), _runner(tmp_path))
        assert report["kind"] == "sweep"
        assert report["benchmarks"] == list(BENCHES)
        assert len(report["cells"]) == 4 * len(BENCHES)
        for cell in report["cells"]:
            assert cell["slowdown"] > 1.0  # ORAM never beats insecure DRAM
            assert cell["spec"]["plb_capacity_bytes"] in (4096, 8192)
        assert json.dumps(report)  # JSON-safe throughout

    def test_serial_and_parallel_reports_identical(self, tmp_path):
        # Distinct result caches so the parallel run really recomputes.
        serial = run_sweep(tiny_sweep(), _runner(tmp_path / "a"))
        parallel = run_sweep(tiny_sweep(), _runner(tmp_path / "b"), workers=3)
        assert serial == parallel

    def test_warm_cache_report_identical_and_replay_free(
        self, tmp_path, monkeypatch
    ):
        cold = run_sweep(tiny_sweep(), _runner(tmp_path))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("replay_trace called on a warm sweep")

        monkeypatch.setattr(runner_mod, "replay_trace", boom)
        warm = run_sweep(tiny_sweep(), _runner(tmp_path))
        assert warm == cold

    def test_progress_streams_every_cell(self, tmp_path):
        seen = []
        run_sweep(
            tiny_sweep(),
            _runner(tmp_path),
            progress=lambda s, b, r, cached: seen.append((s, b)),
        )
        # 4 grid points x 2 benchmarks, plus the 2 insecure baselines.
        assert len(seen) == 4 * len(BENCHES) + len(BENCHES)

    def test_without_baselines_no_slowdown(self, tmp_path):
        report = run_sweep(
            tiny_sweep(), _runner(tmp_path), include_baselines=False
        )
        assert report["baselines"] == {}
        assert all("slowdown" not in cell for cell in report["cells"])

    def test_table_renders_all_points(self, tmp_path):
        report = run_sweep(tiny_sweep(), _runner(tmp_path))
        text = sweep_table(report)
        assert "geomean" in text
        for label in report["schemes"]:
            assert label in text
