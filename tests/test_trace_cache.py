"""MissTrace serialization and the on-disk trace cache."""

import pytest

from repro.config import ProcessorConfig
from repro.proc.hierarchy import CacheHierarchy, MissEvent, MissTrace
from repro.sim.runner import SimulationRunner
from repro.sim.trace_cache import TraceCache, trace_key


def sample_trace(name: str = "bench", n: int = 500) -> MissTrace:
    trace = MissTrace(
        name=name, instructions=12345, mem_refs=678, l1_hits=600, l2_hits=50
    )
    trace.events = [MissEvent((i * 37) % 4096, i % 5 == 0) for i in range(n)]
    return trace


class TestMissTraceSerialization:
    def test_roundtrip(self):
        trace = sample_trace()
        assert MissTrace.from_bytes(trace.to_bytes()) == trace

    def test_roundtrip_uncompressed(self):
        trace = sample_trace()
        assert MissTrace.from_bytes(trace.to_bytes(compress=False)) == trace

    def test_roundtrip_empty_events(self):
        trace = MissTrace(name="empty", instructions=7)
        assert MissTrace.from_bytes(trace.to_bytes()) == trace

    def test_event_fields_survive(self):
        trace = MissTrace(name="x")
        trace.events = [MissEvent(0xDEADBEEF, True), MissEvent(1, False)]
        back = MissTrace.from_bytes(trace.to_bytes())
        assert back.events[0] == MissEvent(0xDEADBEEF, True)
        assert back.events[1] == MissEvent(1, False)

    def test_truncated_header_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            MissTrace.from_bytes(sample_trace().to_bytes()[:10])

    def test_bad_magic_raises(self):
        data = bytearray(sample_trace().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            MissTrace.from_bytes(bytes(data))

    def test_version_skew_raises(self):
        data = bytearray(sample_trace().to_bytes())
        data[4] ^= 0xFF  # version field (little-endian u16 at offset 4)
        with pytest.raises(ValueError, match="version"):
            MissTrace.from_bytes(bytes(data))

    def test_corrupted_payload_raises(self):
        data = bytearray(sample_trace().to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            MissTrace.from_bytes(bytes(data))

    def test_truncated_payload_raises(self):
        data = sample_trace().to_bytes()
        with pytest.raises(ValueError):
            MissTrace.from_bytes(data[:-20])


class TestTraceKey:
    def test_stable_across_calls(self):
        proc = ProcessorConfig()
        assert trace_key("gob", 1, proc, 100, 50) == trace_key("gob", 1, proc, 100, 50)

    def test_sensitive_to_every_input(self):
        proc = ProcessorConfig()
        base = trace_key("gob", 1, proc, 100, 50)
        assert trace_key("mcf", 1, proc, 100, 50) != base
        assert trace_key("gob", 2, proc, 100, 50) != base
        assert trace_key("gob", 1, proc, 200, 50) != base
        assert trace_key("gob", 1, proc, 100, 51) != base
        other = ProcessorConfig(l2_bytes=512 * 1024)
        assert trace_key("gob", 1, other, 100, 50) != base


class TestTraceCache:
    def test_store_then_load(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = sample_trace()
        assert cache.store("k1", trace)
        assert cache.load("k1") == trace
        assert cache.hits == 1 and cache.stores == 1

    def test_load_missing_is_none(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.load("absent") is None
        assert cache.misses == 1

    def test_corrupted_entry_falls_back_and_unlinks(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("k1", sample_trace())
        cache.path_for("k1").write_bytes(b"garbage" * 10)
        assert cache.load("k1") is None
        assert not cache.path_for("k1").exists()

    def test_truncated_entry_falls_back(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = sample_trace()
        cache.store("k1", trace)
        data = cache.path_for("k1").read_bytes()
        cache.path_for("k1").write_bytes(data[: len(data) // 2])
        assert cache.load("k1") is None

    def test_unwritable_root_reports_failure(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go")
        cache = TraceCache(target / "sub")
        assert cache.store("k1", sample_trace()) is False


class TestRunnerDiskCache:
    def test_second_runner_skips_simulation(self, tmp_path, monkeypatch):
        first = SimulationRunner(misses_per_benchmark=150, cache_dir=tmp_path)
        trace = first.trace("gob")
        assert first.trace_cache.stores == 1

        # A fresh runner (fresh memory cache) must load from disk: poison
        # the simulator so any recompute attempt fails loudly.
        def boom(*args, **kwargs):
            raise AssertionError("trace was re-simulated despite disk cache")

        monkeypatch.setattr(CacheHierarchy, "run", boom)
        second = SimulationRunner(misses_per_benchmark=150, cache_dir=tmp_path)
        reloaded = second.trace("gob")
        assert reloaded == trace
        assert second.trace_cache.hits == 1

    def test_corrupt_disk_entry_recomputes(self, tmp_path):
        first = SimulationRunner(misses_per_benchmark=150, cache_dir=tmp_path)
        trace = first.trace("gob")
        key = first.trace_cache_key("gob")
        first.trace_cache.path_for(key).write_bytes(b"\x00" * 64)
        second = SimulationRunner(misses_per_benchmark=150, cache_dir=tmp_path)
        assert second.trace("gob") == trace  # recomputed, not crashed

    def test_budget_change_misses_cache(self, tmp_path):
        a = SimulationRunner(misses_per_benchmark=150, cache_dir=tmp_path)
        a.trace("gob")
        b = SimulationRunner(misses_per_benchmark=151, cache_dir=tmp_path)
        b.trace("gob")
        assert b.trace_cache.hits == 0 and b.trace_cache.stores == 1

    def test_cache_disabled(self, tmp_path):
        runner = SimulationRunner(misses_per_benchmark=150, cache_dir=None)
        runner.trace("gob")
        assert runner.trace_cache is None
        assert list(tmp_path.iterdir()) == []
