"""Smoke tests: every eval module runs and reproduces its headline shape."""

import pytest

from repro.eval import compression, fig3, fig5, fig6, fig7, fig9, hashbw, table2, table3


class TestFig3:
    def test_series_present(self):
        data = fig3.run(log2_capacities=(30, 32, 34))
        assert set(data) == {"b64_pm8", "b128_pm8", "b64_pm256", "b128_pm256"}

    def test_headline_points(self):
        data = fig3.run(log2_capacities=(32,))
        assert dict(data["b64_pm8"])[32] == pytest.approx(0.56, abs=0.03)
        assert dict(data["b128_pm8"])[32] == pytest.approx(0.39, abs=0.04)

    def test_main_prints(self, capsys):
        fig3.main()
        assert "Figure 3" in capsys.readouterr().out


class TestTable2:
    def test_within_10_percent_of_paper(self):
        for channels, cycles in table2.run().items():
            assert cycles == pytest.approx(table2.PAPER_LATENCY[channels], rel=0.10)

    def test_insecure_latency(self):
        assert table2.insecure_latency() == pytest.approx(58, rel=0.10)

    def test_main_prints(self, capsys):
        table2.main()
        assert "Table 2" in capsys.readouterr().out


class TestTable3:
    def test_totals(self):
        results = table3.run()
        for ch, breakdown in results.items():
            assert breakdown.total == pytest.approx(
                table3.PAPER_TABLE3[ch][8], rel=0.05
            )

    def test_layout(self):
        assert table3.layout_total() == pytest.approx(0.47, abs=0.03)

    def test_main_prints(self, capsys):
        table3.main()
        assert "Table 3" in capsys.readouterr().out


class TestHashBw:
    def test_analytic(self):
        factors = hashbw.analytic((16, 32))
        assert factors[16] == 68.0
        assert factors[32] == 132.0

    def test_measured_reduction_large(self):
        merkle, pmmac = hashbw.measured(num_blocks=2**8, accesses=100)
        assert merkle / pmmac > 20

    def test_main_prints(self, capsys):
        hashbw.main()
        assert "68x" in capsys.readouterr().out


class TestCompression:
    def test_facts(self):
        facts = compression.run()
        assert facts.uncompressed_fanout == 16
        assert facts.compressed_fanout == 32
        assert facts.worst_case_remap_overhead == pytest.approx(0.002, abs=2e-4)

    def test_measured_overhead(self):
        rate = compression.measured_remap_overhead(beta=3, accesses=300)
        # Hammering one block: (X-1)/2^beta relocations per access.
        assert rate == pytest.approx(31 / 8, rel=0.25)

    def test_main_prints(self, capsys):
        compression.main()
        assert "compressed PosMap" in capsys.readouterr().out


class TestSimulationFigures:
    """Scaled-down smoke runs of the trace-driven figures."""

    def test_fig5_sweep_improves_or_holds(self):
        table = fig5.run(benchmarks=["gob"], misses=400,
                         capacities=(8 * 1024, 64 * 1024))
        row = table["gob"]
        assert row[8 * 1024] == 1.0
        assert row[64 * 1024] <= 1.02  # bigger PLB never hurts much

    def test_fig6_ordering(self):
        table = fig6.run(benchmarks=["gob", "hmmer"], misses=400)
        assert table["PC_X32"]["geomean"] < table["R_X8"]["geomean"]
        assert table["PIC_X32"]["geomean"] >= table["PC_X32"]["geomean"]

    def test_fig7_shapes(self):
        bars = fig7.run(misses=300, benchmarks=["gob"])
        by_key = {(b.scheme, b.capacity_bytes): b for b in bars}
        cap4 = 4 * 2**30
        cap64 = 64 * 2**30
        r4, pc4 = by_key[("R_X8", cap4)], by_key[("PC_X32", cap4)]
        assert pc4.total_kb < r4.total_kb
        assert pc4.posmap_fraction < r4.posmap_fraction
        # R's PosMap share grows with capacity; PC stays nearly flat.
        r64, pc64 = by_key[("R_X8", cap64)], by_key[("PC_X32", cap64)]
        assert r64.posmap_fraction > r4.posmap_fraction
        assert abs(pc64.posmap_fraction - pc4.posmap_fraction) < 0.12

    def test_fig9_speedup_large(self):
        speedups = fig9.run(benchmarks=["gob"], misses=300)
        assert speedups["gob"] > 3.0

    def test_fig9_byte_ratio(self):
        assert fig9.byte_movement_ratio() == pytest.approx(0.021, abs=0.003)


class TestBench:
    def test_writes_report(self, tmp_path, capsys):
        from repro.eval import bench

        out = tmp_path / "BENCH_replay.json"
        report = bench.run_bench(events=120, repeats=1, out_path=str(out))
        printed = capsys.readouterr().out
        assert "acc/s" in printed
        assert out.exists()
        import json

        on_disk = json.loads(out.read_text("utf-8"))
        assert on_disk["kind"] == "replay_throughput"
        cells = {(c["scheme"], c["storage"]) for c in on_disk["results"]}
        assert cells == {
            (s, st) for s in bench.SCHEMES for st in bench.BENCH_STORAGES
        }
        assert all(c["accesses_per_sec"] > 0 for c in report["results"])
        # The pipeline section covers every scheme in both kernels and
        # feeds the batched-vs-scalar comparison.
        pipeline = {(c["scheme"], c["mode"]) for c in on_disk["pipeline"]}
        assert pipeline == {
            (s, m) for s in bench.SCHEMES for m in ("batched", "scalar")
        }
        assert on_disk["comparisons"]["batched_vs_scalar_replay_geomean"] > 0

    def _fake_report(self, tmp_path, backend=1.5, pipeline=1.05):
        import json

        path = tmp_path / "BENCH_replay.json"
        path.write_text(json.dumps({
            "comparisons": {
                "columnar_vs_object_backend": backend,
                "batched_vs_scalar_replay_geomean": pipeline,
            }
        }), "utf-8")
        return str(path)

    def test_check_report_passes_above_floors(self, tmp_path, capsys):
        from repro.eval import bench

        bench.check_report(self._fake_report(tmp_path))
        out = capsys.readouterr().out
        assert "columnar backend at 1.50x" in out
        assert "batched replay at 1.05x" in out

    def test_check_report_gates_pipeline_regression(self, tmp_path):
        from repro.eval import bench

        path = self._fake_report(tmp_path, pipeline=0.93)
        with pytest.raises(SystemExit, match="batched replay regressed"):
            bench.check_report(path)

    def test_check_report_gates_backend_regression(self, tmp_path):
        from repro.eval import bench

        path = self._fake_report(tmp_path, backend=0.8)
        with pytest.raises(SystemExit, match="columnar backend regressed"):
            bench.check_report(path)

    def test_check_report_requires_pipeline_comparison(self, tmp_path):
        import json

        from repro.eval import bench

        path = tmp_path / "BENCH_replay.json"
        path.write_text(json.dumps({
            "comparisons": {"columnar_vs_object_backend": 1.4}
        }), "utf-8")
        with pytest.raises(SystemExit, match="no batched-vs-scalar"):
            bench.check_report(str(path))
