"""PLB + Unified tree Frontend in all format/PMMAC combinations."""

import pytest

from repro.backend.ops import Op
from repro.errors import ConfigurationError
from repro.frontend.unified import PlbFrontend
from repro.utils.rng import DeterministicRng

ALL_VARIANTS = [
    ("uncompressed", False),
    ("flat", False),
    ("compressed", False),
    ("uncompressed", True),
    ("flat", True),
    ("compressed", True),
]


def make(posmap_format="uncompressed", pmmac=False, num_blocks=2**10, **kwargs):
    kwargs.setdefault("onchip_entries", 2**4)
    kwargs.setdefault("plb_capacity_bytes", 2 * 1024)
    return PlbFrontend(
        num_blocks=num_blocks,
        posmap_format=posmap_format,
        pmmac=pmmac,
        rng=DeterministicRng(31),
        **kwargs,
    )


class TestStructure:
    def test_fanouts_match_paper(self):
        assert make("uncompressed").format.fanout == 16  # P_X16
        assert make("flat").format.fanout == 8  # PI_X8
        assert make("compressed").format.fanout == 32  # PC_X32

    def test_unified_tree_holds_all_levels(self):
        frontend = make("uncompressed")
        assert frontend.config.num_blocks >= frontend.space.total_blocks()

    def test_adds_at_most_one_level(self):
        """§4.2.1: unified tree has at most one extra level."""
        frontend = make("uncompressed", num_blocks=2**12)
        data_only_levels = 11  # log2(2^12) - 1
        assert frontend.config.levels <= data_only_levels + 1

    def test_pmmac_adds_mac_bytes(self):
        assert make("flat", pmmac=True).config.mac_bytes == 14
        assert make("flat", pmmac=False).config.mac_bytes == 0

    def test_onchip_mode_follows_pmmac(self):
        assert make("compressed", pmmac=True).posmap.mode == "counter"
        assert make("compressed", pmmac=False).posmap.mode == "leaf"

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            make("zip")


@pytest.mark.parametrize("posmap_format,pmmac", ALL_VARIANTS)
class TestFunctional:
    def test_write_read(self, posmap_format, pmmac):
        frontend = make(posmap_format, pmmac)
        payload = b"\x77" * 64
        frontend.write(321, payload)
        assert frontend.read(321) == payload

    def test_fresh_reads_zero(self, posmap_format, pmmac):
        frontend = make(posmap_format, pmmac)
        assert frontend.read(500) == bytes(64)

    def test_repeated_access_same_block(self, posmap_format, pmmac):
        frontend = make(posmap_format, pmmac)
        payload = b"\x10" * 64
        frontend.write(77, payload)
        for _ in range(20):
            assert frontend.read(77) == payload

    def test_shadow_consistency(self, posmap_format, pmmac):
        frontend = make(posmap_format, pmmac)
        rng = DeterministicRng(101)
        shadow = {}
        for step in range(300):
            addr = rng.randrange(2**10)
            if rng.random() < 0.5:
                data = bytes([(step * 7) % 256]) * 64
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(64))

    def test_stash_bounded(self, posmap_format, pmmac):
        frontend = make(posmap_format, pmmac)
        rng = DeterministicRng(55)
        for _ in range(800):
            frontend.read(rng.randrange(2**10))
        assert frontend.backend.stash.occupancy_stats.max <= 40


class TestPlbBehaviour:
    def test_sequential_access_hits_plb(self):
        """Unit-stride traffic shares PosMap blocks -> high hit rate."""
        frontend = make("uncompressed", plb_capacity_bytes=4 * 1024)
        for addr in range(256):
            frontend.read(addr)
        assert frontend.stats.plb_hits > 0.8 * frontend.stats.accesses

    def test_hit_skips_posmap_accesses(self):
        frontend = make("uncompressed")
        first = frontend.access(0, Op.READ)
        second = frontend.access(1, Op.READ)  # same PosMap block as 0
        assert second.tree_accesses < first.tree_accesses
        assert second.tree_accesses == 1

    def test_strided_access_misses_plb(self):
        """§4.1.2 program B: stride X never reuses a PosMap block entry...
        it still hits the block itself only 1/X as often."""
        frontend = make("uncompressed", plb_capacity_bytes=1024)
        fanout = frontend.format.fanout
        for i in range(200):
            frontend.read((i * fanout * 8) % 2**10)
        assert frontend.stats.plb_hits < frontend.stats.accesses // 2

    def test_single_level_counts_no_plb_lookups(self):
        """With H=1 no PLB lookup occurs, so neither hits nor misses may
        accumulate — tiny working sets must not inflate Fig-5 hit rates."""
        frontend = make("uncompressed", num_blocks=8, onchip_entries=2**6)
        assert frontend.space_levels == 1
        for addr in range(8):
            frontend.read(addr)
        assert frontend.stats.accesses == 8
        assert frontend.stats.plb_hits == 0
        assert frontend.stats.plb_misses == 0
        assert frontend.plb.hits == 0 and frontend.plb.misses == 0

    def test_multi_level_hit_rate_over_lookups_only(self):
        frontend = make("uncompressed")
        assert frontend.space_levels > 1
        for addr in range(64):
            frontend.read(addr)
        assert (
            frontend.stats.plb_hits + frontend.stats.plb_misses
            == frontend.stats.accesses
        )

    def test_plb_eviction_appends_to_stash(self):
        frontend = make("uncompressed", plb_capacity_bytes=1024)
        rng = DeterministicRng(8)
        for _ in range(300):
            frontend.read(rng.randrange(2**10))
        assert frontend.stats.plb_evictions > 0
        # Evicted blocks must remain reachable (no data loss):
        payload = b"\x3C" * 64
        frontend.write(17, payload)
        for _ in range(200):
            frontend.read(rng.randrange(2**10))
        assert frontend.read(17) == payload

    def test_tree_access_count_vs_recursive(self):
        """The PLB must save PosMap accesses vs always-walk."""
        frontend = make("uncompressed", plb_capacity_bytes=8 * 1024)
        rng = DeterministicRng(13)
        for _ in range(500):
            frontend.read(rng.zipf(2**10, 1.2))
        walk_cost = frontend.stats.accesses * (frontend.space_levels - 1)
        assert frontend.stats.posmap_tree_accesses < walk_cost


class TestAccessResults:
    def test_result_reports_hit_level(self):
        frontend = make("uncompressed")
        frontend.read(0)
        result = frontend.access(1, Op.READ)
        assert result.plb_hit_level == 0

    def test_bytes_split_posmap_vs_data(self):
        frontend = make("uncompressed")
        rng = DeterministicRng(3)
        for _ in range(100):
            frontend.read(rng.randrange(2**10))
        per_access = 2 * frontend.config.path_bytes
        assert frontend.data_bytes_moved == frontend.stats.data_tree_accesses * per_access
        assert (
            frontend.posmap_bytes_moved
            == frontend.stats.posmap_tree_accesses * per_access
        )
        total_storage = frontend.backend.storage.bytes_moved
        assert frontend.data_bytes_moved + frontend.posmap_bytes_moved == total_storage

    def test_write_requires_payload(self):
        with pytest.raises(ValueError):
            make().access(0, Op.WRITE)

    def test_rejects_backend_ops(self):
        with pytest.raises(ConfigurationError):
            make().access(0, Op.READRMV)
