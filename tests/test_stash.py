"""Stash semantics and overflow detection."""

import pytest

from repro.errors import StashOverflowError
from repro.backend.stash import Stash
from repro.storage.block import Block


class TestStashBasics:
    def test_add_get_pop(self):
        stash = Stash(limit=10)
        stash.add(Block(1, 0, b"x"))
        assert stash.get(1).data == b"x"
        assert stash.pop(1).addr == 1
        assert stash.get(1) is None

    def test_duplicate_rejected(self):
        stash = Stash(limit=10)
        stash.add(Block(1, 0, b""))
        with pytest.raises(ValueError):
            stash.add(Block(1, 1, b""))

    def test_pop_missing_returns_none(self):
        assert Stash(limit=5).pop(42) is None

    def test_contains(self):
        stash = Stash(limit=5)
        stash.add(Block(7, 0, b""))
        assert stash.contains(7)
        assert not stash.contains(8)

    def test_add_all_and_len(self):
        stash = Stash(limit=10)
        stash.add_all(Block(i, 0, b"") for i in range(4))
        assert len(stash) == 4

    def test_remove_many(self):
        stash = Stash(limit=10)
        stash.add_all(Block(i, 0, b"") for i in range(4))
        stash.remove_many([1, 3])
        assert sorted(b.addr for b in stash.blocks()) == [0, 2]


class TestOverflow:
    def test_limit_enforced(self):
        stash = Stash(limit=3)
        stash.add_all(Block(i, 0, b"") for i in range(4))
        with pytest.raises(StashOverflowError):
            stash.check_limit()

    def test_at_limit_is_fine(self):
        stash = Stash(limit=3)
        stash.add_all(Block(i, 0, b"") for i in range(3))
        stash.check_limit()

    def test_occupancy_stats_recorded(self):
        stash = Stash(limit=10)
        stash.add(Block(1, 0, b""))
        stash.check_limit()
        stash.add(Block(2, 0, b""))
        stash.check_limit()
        assert stash.occupancy_stats.count == 2
        assert stash.occupancy_stats.max == 2
