"""CryptoSuite bundling and key derivation."""

from repro.crypto.mac import Mac
from repro.crypto.pad import PadGenerator
from repro.crypto.prf import Prf
from repro.crypto.suite import CryptoSuite, derive_key


class TestDeriveKey:
    def test_length(self):
        assert len(derive_key(b"master", "prf")) == 16

    def test_labels_separate(self):
        assert derive_key(b"master", "prf") != derive_key(b"master", "mac")

    def test_masters_separate(self):
        assert derive_key(b"m1", "prf") != derive_key(b"m2", "prf")

    def test_deterministic(self):
        assert derive_key(b"m", "x") == derive_key(b"m", "x")


class TestSuites:
    def test_fast_suite_modes(self):
        suite = CryptoSuite.fast()
        assert suite.prf.mode == Prf.MODE_FAST
        assert suite.mac.mode == Mac.MODE_FAST
        assert suite.pad.mode == PadGenerator.MODE_FAST

    def test_reference_suite_modes(self):
        suite = CryptoSuite.reference()
        assert suite.prf.mode == Prf.MODE_AES
        assert suite.mac.mode == Mac.MODE_SHA3
        assert suite.pad.mode == PadGenerator.MODE_AES

    def test_suites_share_interface(self):
        """Fast and reference suites are drop-in replacements."""
        for suite in (CryptoSuite.fast(b"k"), CryptoSuite.reference(b"k")):
            leaf = suite.prf.leaf_for(9, 2, 12)
            assert 0 <= leaf < 4096
            tag = suite.mac.block_tag(1, 9, b"data")
            assert len(tag) == suite.mac.tag_bytes
            assert len(suite.pad.global_seed_pad(0, 40)) == 40

    def test_distinct_master_keys_distinct_leaves(self):
        a = CryptoSuite.fast(b"key-a")
        b = CryptoSuite.fast(b"key-b")
        leaves_a = [a.prf.leaf_for(i, 0, 20) for i in range(20)]
        leaves_b = [b.prf.leaf_for(i, 0, 20) for i in range(20)]
        assert leaves_a != leaves_b

    def test_subkeys_differ_within_suite(self):
        suite = CryptoSuite.fast(b"master")
        assert suite.prf.key != suite.mac.key != suite.pad.key
