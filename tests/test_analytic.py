"""Analytic bandwidth and hash models against the paper's claims."""

import pytest

from repro.analytic.bandwidth import (
    compressed_overhead_term,
    posmap_fraction,
    recursion_breakdown,
    recursive_level_sizes,
    recursive_overhead_term,
    unified_access_bytes,
)
from repro.analytic.hashbw import (
    hash_reduction_factor,
    merkle_bytes_hashed_per_access,
    merkle_hash_blocks_per_access,
    pmmac_bytes_hashed_per_access,
    pmmac_hash_blocks_per_access,
)


class TestRecursionBreakdown:
    def test_level_sizes(self):
        assert recursive_level_sizes(2**20, 8, 2**10) == [
            2**20, 2**17, 2**14, 2**11, 2**8,
        ]

    def test_fig3_4gb_64b_point(self):
        """Paper: 56% of bytes from PosMap ORAMs at 4 GB, 64 B, pm8."""
        frac = posmap_fraction(1 << 32, 64, 8 * 1024)
        assert frac == pytest.approx(0.56, abs=0.03)

    def test_fig3_4gb_128b_point(self):
        """Paper: 39% at 4 GB, 128 B blocks."""
        frac = posmap_fraction(1 << 32, 128, 8 * 1024)
        assert frac == pytest.approx(0.39, abs=0.04)

    def test_fraction_grows_with_capacity(self):
        """Fig. 3's upward trend."""
        small = posmap_fraction(1 << 30, 64, 8 * 1024)
        large = posmap_fraction(1 << 40, 64, 8 * 1024)
        assert large > small

    def test_bigger_onchip_posmap_helps_slightly(self):
        pm8 = posmap_fraction(1 << 34, 64, 8 * 1024)
        pm256 = posmap_fraction(1 << 34, 64, 256 * 1024)
        assert pm256 < pm8
        assert pm8 - pm256 < 0.15  # "only slightly dampens" (§3.2.1)

    def test_breakdown_totals(self):
        b = recursion_breakdown(2**20)
        assert b.total_bytes == b.data_bytes + b.posmap_bytes
        assert 0 < b.posmap_fraction < 1


class TestUnifiedBytes:
    def test_perfect_plb_has_no_posmap_traffic(self):
        u = unified_access_bytes(2**20, posmap_accesses_per_data_access=0.0)
        assert u.posmap_bytes == 0

    def test_posmap_rate_scales(self):
        lo = unified_access_bytes(2**20, posmap_accesses_per_data_access=0.2)
        hi = unified_access_bytes(2**20, posmap_accesses_per_data_access=1.0)
        assert hi.posmap_bytes == pytest.approx(5 * lo.posmap_bytes, rel=0.01)

    def test_mac_bytes_increase_traffic(self):
        plain = unified_access_bytes(2**20, mac_bytes=0)
        mac = unified_access_bytes(2**20, mac_bytes=14)
        assert mac.data_bytes > plain.data_bytes

    def test_fig7_pc_vs_r_reduction_shape(self):
        """PC_X32 with measured-scale PLB rates cuts R_X8 traffic ~40%,
        growing with capacity (Fig. 7)."""
        cuts = []
        for log_cap in (32, 36):
            r = recursion_breakdown(1 << (log_cap - 6), onchip_posmap_bytes=256 * 1024)
            pc = unified_access_bytes(
                1 << (log_cap - 6), fanout=32, posmap_accesses_per_data_access=0.35
            )
            cuts.append(1 - pc.total_bytes / r.total_bytes)
        assert cuts[0] > 0.25
        assert cuts[1] > cuts[0]


class TestAsymptotics:
    def test_compressed_beats_recursive_small_blocks(self):
        """§5.4: for B = o(log^2 N) compression wins asymptotically."""
        n, b = 2**26, 512
        assert compressed_overhead_term(n, b) < recursive_overhead_term(n, b)

    def test_advantage_grows_with_n(self):
        ratios = [
            recursive_overhead_term(1 << k, 512) / compressed_overhead_term(1 << k, 512)
            for k in (20, 30, 40)
        ]
        assert ratios == sorted(ratios)


class TestHashBandwidth:
    def test_paper_68x(self):
        assert hash_reduction_factor(16) == 68.0

    def test_paper_132x(self):
        assert hash_reduction_factor(32) == 132.0

    def test_blocks_per_access(self):
        assert merkle_hash_blocks_per_access(16) == 68
        assert pmmac_hash_blocks_per_access() == 1

    def test_bytes_per_access_ordering(self):
        merkle = merkle_bytes_hashed_per_access(16, bucket_bytes=320)
        pmmac = pmmac_bytes_hashed_per_access(64)
        assert merkle / pmmac > 68  # byte ratio exceeds the block ratio

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            merkle_hash_blocks_per_access(-1)
