"""Chaos lockstep: injected-then-recovered runs equal fault-free goldens.

The acceptance property of the fault plane: for every recoverable fault
class (cell crash, worker death, pool stall, Ctrl-C + resume, shard
breaker trips), the healed run's *measured* outputs — SimResults, sweep
tables, per-shard access digests — are bit-identical to a fault-free
golden run at the same seed. Only the ``resilience`` accounting block may
differ.
"""

import json

import pytest

import repro.sim.runner as runner_mod
from repro.errors import ConfigurationError, InjectedFault, SweepInterrupted
from repro.faults import RetryPolicy, injected, parse
from repro.serve import OramService, ServeConfig, tenants_for
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

BENCHES = ("gob", "hmmer")
MISSES = 150
SCHEMES = ["P_X16", "PC_X32"]


def _runner(tmp_path, tag, **kw) -> SimulationRunner:
    return SimulationRunner(
        misses_per_benchmark=MISSES,
        cache_dir=tmp_path / tag / "traces",
        result_cache_dir=tmp_path / tag / "results",
        **kw,
    )


def _sweep() -> SweepSpec:
    return SweepSpec.from_args(
        schemes=SCHEMES,
        grid={"plb_capacity_bytes": ["4KiB", "8KiB"]},
        benchmarks=BENCHES,
    )


def _strip(report):
    """Drop the (intentionally differing) resilience accounting block."""
    clone = dict(report)
    assert "resilience" in clone
    clone.pop("resilience")
    return clone


class TestSuiteSelfHealing:
    def test_serial_crash_retry_matches_golden(self, tmp_path):
        golden = _runner(tmp_path, "g").run_suite(SCHEMES, BENCHES)
        runner = _runner(tmp_path, "c")
        # Every cell's first attempt crashes; retries heal all of them.
        with injected("cell.crash@*/1") as plan:
            healed = runner.run_suite(SCHEMES, BENCHES)
        assert healed == golden
        assert len(plan.fired) == len(SCHEMES) * len(BENCHES)

    def test_exhausted_retries_quarantine_not_abort(self, tmp_path):
        runner = _runner(tmp_path, "q")
        failures = []
        with injected("cell.crash@P_X16/gob/*"):  # every attempt crashes
            out = runner.run_suite(
                SCHEMES,
                BENCHES,
                retry=RetryPolicy(attempts=2, backoff=0.0),
                failures=failures,
            )
        assert "gob" not in out["P_X16"]  # quarantined cell is absent
        assert out["P_X16"]["hmmer"].cycles > 0  # the rest completed
        assert out["PC_X32"]["gob"].cycles > 0
        (entry,) = failures
        assert entry["scheme"] == "P_X16" and entry["benchmark"] == "gob"
        assert entry["attempts"] == 2 and "InjectedFault" in entry["error"]

    def test_exhausted_retries_raise_without_quarantine_list(self, tmp_path):
        runner = _runner(tmp_path, "r")
        with injected("cell.crash@P_X16/gob/*"):
            with pytest.raises(InjectedFault):
                runner.run_suite(
                    SCHEMES, BENCHES, retry=RetryPolicy(attempts=2, backoff=0.0)
                )

    def test_worker_death_pool_rebuild_matches_golden(self, tmp_path, monkeypatch):
        golden = _runner(tmp_path, "g").run_suite(SCHEMES, BENCHES)
        # Workers re-install the plan from the environment; each worker
        # process kills itself (hard exit) on its first attempt-1 cell.
        monkeypatch.setenv("REPRO_FAULTS", "worker.exit@*/1#1")
        runner = _runner(tmp_path, "w")
        healed = runner.run_suite(
            SCHEMES,
            BENCHES,
            workers=2,
            retry=RetryPolicy(attempts=3, backoff=0.0),
        )
        assert healed == golden

    def test_stalled_pool_abandoned_and_matches_golden(self, tmp_path, monkeypatch):
        golden = _runner(tmp_path, "g").run_suite(SCHEMES, BENCHES)
        # Attempt-1 worker cells stall far longer than the suite timeout;
        # the stalled pool is abandoned and attempt 2 sails through.
        monkeypatch.setenv("REPRO_FAULTS", "worker.stall@*/1|secs=30")
        runner = _runner(tmp_path, "s")
        healed = runner.run_suite(
            SCHEMES,
            BENCHES,
            workers=2,
            retry=RetryPolicy(attempts=3, backoff=0.0, timeout=0.3),
        )
        assert healed == golden


class TestSweepChaosLockstep:
    def test_crash_healed_sweep_report_bit_identical(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        with injected("cell.crash@*/1"):
            healed = run_sweep(_sweep(), _runner(tmp_path, "c"))
        assert _strip(healed) == _strip(golden)
        assert sweep_table(healed) == sweep_table(golden)
        assert healed["resilience"]["quarantined"] == []

    def test_interrupt_then_resume_bit_identical_and_minimal(self, tmp_path):
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        ckpt_path = tmp_path / "chaos.ckpt.jsonl"

        # Phase 1: die after the third completed cell is journaled.
        with injected("sweep.interrupt@*#3"):
            with pytest.raises(SweepInterrupted) as exc_info:
                run_sweep(
                    _sweep(), _runner(tmp_path, "c"), checkpoint=ckpt_path
                )
        partial = exc_info.value.report
        assert partial["resilience"]["interrupted"] is True
        assert partial["resilience"]["executed"] == 3

        # Phase 2: resume with cold caches — only the missing scheme
        # cells replay (the journal, not the result cache, supplies the
        # finished ones).
        replays = []
        real_replay = runner_mod.replay_trace

        def counting_replay(*args, **kwargs):
            result = real_replay(*args, **kwargs)
            replays.append(result.scheme)
            return result

        runner_mod.replay_trace = counting_replay
        try:
            resumed = run_sweep(
                _sweep(),
                _runner(tmp_path, "c2"),
                checkpoint=ckpt_path,
                resume=True,
            )
        finally:
            runner_mod.replay_trace = real_replay
        total_cells = len(golden["cells"])
        assert resumed["resilience"]["resumed"] == 3
        assert len(replays) == total_cells - 3  # minimal recomputation
        assert _strip(resumed) == _strip(golden)
        assert sweep_table(resumed) == sweep_table(golden)

    def test_resume_refuses_foreign_checkpoint(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt.jsonl"
        with injected("sweep.interrupt@*#1"):
            with pytest.raises(SweepInterrupted):
                run_sweep(
                    _sweep(), _runner(tmp_path, "a"), checkpoint=ckpt_path
                )
        other = SweepSpec.from_args(schemes=["PC_X32"], benchmarks=["gob"])
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(
                other, _runner(tmp_path, "a"), checkpoint=ckpt_path, resume=True
            )

    def test_resume_tolerates_torn_journal_tail(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt.jsonl"
        with injected("sweep.interrupt@*#2"):
            with pytest.raises(SweepInterrupted):
                run_sweep(
                    _sweep(), _runner(tmp_path, "a"), checkpoint=ckpt_path
                )
        with open(ckpt_path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "half-written')  # mid-append crash
        golden = run_sweep(_sweep(), _runner(tmp_path, "g"))
        resumed = run_sweep(
            _sweep(), _runner(tmp_path, "b"), checkpoint=ckpt_path, resume=True
        )
        assert resumed["resilience"]["resumed"] == 2  # the intact prefix
        assert _strip(resumed) == _strip(golden)

    def test_quarantined_sweep_cell_reported_not_fatal(self, tmp_path):
        with injected("cell.crash@P_X16*/gob/*"):
            report = run_sweep(
                _sweep(),
                _runner(tmp_path, "q"),
                retry=RetryPolicy(attempts=2, backoff=0.0),
            )
        quarantined = report["resilience"]["quarantined"]
        assert {(q["scheme"].split(":")[0], q["benchmark"]) for q in quarantined} == {
            ("P_X16", "gob")
        }
        # Both P_X16 grid points lost their gob cell; everything else ran.
        expected = len(SCHEMES) * 2 * len(BENCHES) - len(quarantined)
        assert len(report["cells"]) == expected
        assert json.dumps(report)  # report stays JSON-safe

    def test_checkpoint_journal_is_idempotent_per_key(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "j.ckpt.jsonl")
        ckpt.open("fp", resume=False)
        ckpt.record("k", {"v": 1})
        ckpt.record("k", {"v": 2})  # ignored: first write wins
        ckpt.close()
        reopened = SweepCheckpoint(tmp_path / "j.ckpt.jsonl")
        assert reopened.open("fp", resume=True) == {"k": {"v": 1}}
        reopened.close()


def _scrub_wall(value):
    """Recursively drop wall-clock observations (not deterministic by design)."""
    if isinstance(value, dict):
        return {
            k: _scrub_wall(v)
            for k, v in value.items()
            if k not in ("wall_seconds", "wall_us")
        }
    if isinstance(value, list):
        return [_scrub_wall(v) for v in value]
    return value


class TestServeSweepChaos:
    def test_serve_sweep_interrupt_resume_bit_identical(self, tmp_path):
        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid={"tenants": [2, 3]},
            benchmarks=["gob", "hmmer"],
        )
        golden = run_sweep(sweep, _runner(tmp_path, "g"))
        ckpt_path = tmp_path / "serve.ckpt.jsonl"
        with injected("sweep.interrupt@*#1"):
            with pytest.raises(SweepInterrupted) as exc_info:
                run_sweep(sweep, _runner(tmp_path, "g"), checkpoint=ckpt_path)
        assert len(exc_info.value.report["cells"]) == 1
        resumed = run_sweep(
            sweep, _runner(tmp_path, "g"), checkpoint=ckpt_path, resume=True
        )
        assert resumed["resilience"]["resumed"] == 1
        assert resumed["resilience"]["executed"] == 1
        assert _scrub_wall(_strip(resumed)) == _scrub_wall(_strip(golden))


class TestShardFailover:
    def _service(self, tmp_path, tag) -> OramService:
        return OramService(
            tenants_for(["gob", "hmmer"], 3),
            runner=_runner(tmp_path, tag),
            config=ServeConfig(scheme="PC_X32", shards=2),
        )

    def test_breaker_trip_preserves_digests_and_cycles(self, tmp_path):
        golden = self._service(tmp_path, "g").run("serial")
        chaotic = self._service(tmp_path, "g")
        with injected("serve.shard.stall@0#2|epochs=2"):
            chaotic.run("serial")
        assert chaotic.shards[0].stats.breaker_trips == 1
        assert chaotic.shards[0].stats.stall_epochs == 2
        assert chaotic.shards[0].stats.parked > 0
        for healed, clean in zip(chaotic.shards, golden.shards):
            assert healed.stats.access_digest == clean.stats.access_digest
            assert healed.stats.busy_cycles == clean.stats.busy_cycles
            assert healed.stats.requests == clean.stats.requests
        for ht, ct in zip(chaotic.tenant_stats, golden.tenant_stats):
            assert ht.cycles == ct.cycles
            assert ht.completed == ct.completed

    def test_serial_and_async_failover_identical(self, tmp_path):
        plan_text = "serve.shard.stall@1#3|epochs=2"
        serial = self._service(tmp_path, "g")
        with injected(plan_text):
            serial.run("serial")
        concurrent = self._service(tmp_path, "g")
        with injected(parse(plan_text)):
            concurrent.run("async")
        assert serial.epochs == concurrent.epochs
        for a, b in zip(serial.shards, concurrent.shards):
            assert a.stats.access_digest == b.stats.access_digest
            assert a.stats.busy_cycles == b.stats.busy_cycles
            assert a.stats.parked == b.stats.parked
            assert a.stats.stall_epochs == b.stats.stall_epochs

    def test_every_parked_request_eventually_completes(self, tmp_path):
        service = self._service(tmp_path, "g")
        with injected("serve.shard.stall@0#1|epochs=3"):
            service.run("serial")
        assert all(not s.backlog for s in service.shards)
        issued = sum(t.issued for t in service.tenant_stats)
        completed = sum(t.completed for t in service.tenant_stats)
        assert issued == completed

    def test_report_carries_failover_counters(self, tmp_path):
        service = self._service(tmp_path, "g")
        with injected("serve.shard.stall@0#1|epochs=1"):
            service.run("serial")
        shard0 = service.report()["shards"][0]
        assert shard0["breaker_trips"] == 1
        assert shard0["stall_epochs"] == 1
        assert shard0["parked"] >= 0
        assert json.dumps(service.report())
