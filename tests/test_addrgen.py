"""Address generation for the recursive PosMap hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend.addrgen import AddressSpace, levels_needed


class TestAddressSpace:
    def test_chain_matches_paper_example(self):
        """§3.2's example: X=4, a0 = 1001001b = 73."""
        space = AddressSpace(num_blocks=128, fanout=4, num_levels=3)
        assert space.chain(73) == [73, 18, 4]

    def test_chain_floors(self):
        space = AddressSpace(num_blocks=1000, fanout=8, num_levels=3)
        assert space.chain(999) == [999, 124, 15]

    def test_level_blocks_ceil(self):
        space = AddressSpace(num_blocks=1000, fanout=8, num_levels=4)
        assert space.level_blocks(0) == 1000
        assert space.level_blocks(1) == 125
        assert space.level_blocks(2) == 16
        assert space.level_blocks(3) == 2

    def test_total_blocks(self):
        space = AddressSpace(num_blocks=64, fanout=8, num_levels=3)
        assert space.total_blocks() == 64 + 8 + 1

    def test_unified_tree_adds_at_most_one_level(self):
        """§4.2.1: total blocks < 2N for X >= 2."""
        for fanout in (2, 8, 16, 32):
            space = AddressSpace(num_blocks=2**16, fanout=fanout, num_levels=6)
            assert space.total_blocks() < 2 * 2**16

    def test_child_slot(self):
        space = AddressSpace(num_blocks=128, fanout=4, num_levels=3)
        assert space.child_slot(73) == 1
        assert space.child_slot(18) == 2

    def test_out_of_range_rejected(self):
        space = AddressSpace(num_blocks=16, fanout=4, num_levels=2)
        with pytest.raises(ValueError):
            space.chain(16)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(16, 1, 2)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(16, 4, 0)


class TestTagging:
    def test_tag_roundtrip(self):
        for level in (0, 1, 7, 15):
            for index in (0, 1, 12345, 2**40):
                assert AddressSpace.untag(AddressSpace.tag(level, index)) == (
                    level,
                    index,
                )

    def test_tags_disambiguate_levels(self):
        """§4.1.1: the same index at different levels must not collide."""
        assert AddressSpace.tag(1, 5) != AddressSpace.tag(2, 5)

    def test_level_zero_tag_is_identity(self):
        assert AddressSpace.tag(0, 12345) == 12345

    def test_oversized_index_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace.tag(1, 1 << 48)

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2**48 - 1),
    )
    def test_tag_bijective(self, level, index):
        assert AddressSpace.untag(AddressSpace.tag(level, index)) == (level, index)


class TestLevelsNeeded:
    def test_fits_onchip_directly(self):
        assert levels_needed(1024, 8, 1024) == 1

    def test_paper_formula(self):
        """H = log(N/p)/log(X) + 1 for exact powers (§3.2)."""
        assert levels_needed(2**26, 8, 2**11) == 6  # (26-11)/3 = 5 PosMap levels
        assert levels_needed(2**20, 16, 2**8) == 4  # (20-8)/4 = 3 PosMap levels

    def test_rounds_up(self):
        assert levels_needed(2**20, 8, 2**10) == 5  # 10/3 -> 4 PosMap levels

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            levels_needed(16, 4, 0)

    @given(
        st.integers(min_value=1, max_value=2**24),
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=1, max_value=2**12),
    )
    def test_result_satisfies_budget(self, n, x, p):
        h = levels_needed(n, x, p)
        space = AddressSpace(max(n, 1), x, h)
        assert space.level_blocks(h - 1) <= p
        if h > 1:
            assert space.level_blocks(h - 2) > p
