"""CLI dispatch."""

import os

import pytest

from repro.cli import EXPERIMENTS, main
from repro.sim.replay import REPLAY_ENV
from repro.sim.result_cache import RESULT_CACHE_ENV
from repro.sim.runner import FORCE_ENV, WORKERS_ENV
from repro.sim.trace_cache import CACHE_ENV
from repro.storage.array_tree import STORAGE_ENV


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table2", "fig6", "hashbw"):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_multiple_names(self, capsys):
        assert main(["compression", "hashbw"]) == 0
        out = capsys.readouterr().out
        assert "compressed PosMap" in out
        assert "68x" in out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) >= {
            "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table2", "table3", "hashbw", "compression",
        }


class TestCliFlags:
    @pytest.fixture(autouse=True)
    def _restore_env(self):
        """Undo env mutations made by ``main()`` during a test.

        ``monkeypatch.delenv(raising=False)`` on an absent variable
        records nothing, so a variable the CLI *sets* during the test
        would otherwise leak into the rest of the session (e.g.
        ``REPRO_WORKERS=4`` flipping later suites into pool mode).
        """
        keys = (
            WORKERS_ENV, CACHE_ENV, RESULT_CACHE_ENV, STORAGE_ENV, FORCE_ENV,
            REPLAY_ENV,
        )
        saved = {key: os.environ.get(key) for key in keys}
        yield
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    def test_workers_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert main(["--workers", "4", "table2"]) == 0
        assert capsys.readouterr().out  # experiment still ran
        import os

        assert os.environ.get(WORKERS_ENV) == "4"

    def test_workers_equals_form(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert main(["--workers=2", "table2"]) == 0
        import os

        assert os.environ.get(WORKERS_ENV) == "2"

    def test_workers_rejects_bad_value(self, capsys):
        assert main(["--workers", "zero", "table2"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_workers_rejects_missing_value(self, capsys):
        assert main(["table2", "--workers"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_no_trace_cache_flag(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert main(["--no-trace-cache", "table2"]) == 0
        import os

        assert os.environ.get(CACHE_ENV) == "off"

    def test_trace_cache_dir_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert main([f"--trace-cache={tmp_path}", "table2"]) == 0
        import os

        assert os.environ.get(CACHE_ENV) == str(tmp_path)

    def test_no_result_cache_flag(self, monkeypatch):
        monkeypatch.delenv(RESULT_CACHE_ENV, raising=False)
        assert main(["--no-result-cache", "table2"]) == 0
        assert os.environ.get(RESULT_CACHE_ENV) == "off"

    def test_result_cache_dir_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RESULT_CACHE_ENV, raising=False)
        assert main([f"--result-cache={tmp_path}", "table2"]) == 0
        assert os.environ.get(RESULT_CACHE_ENV) == str(tmp_path)

    def test_storage_flag(self, monkeypatch):
        monkeypatch.delenv(STORAGE_ENV, raising=False)
        assert main(["--storage", "array", "table2"]) == 0
        assert os.environ.get(STORAGE_ENV) == "array"

    def test_storage_flag_rejects_unknown(self, capsys):
        assert main(["--storage", "quantum", "table2"]) == 2
        assert "object" in capsys.readouterr().err

    def test_force_flag_sets_env(self, monkeypatch):
        monkeypatch.delenv(FORCE_ENV, raising=False)
        assert main(["--force", "table2"]) == 0
        assert os.environ.get(FORCE_ENV) == "1"

    def test_replay_flag_sets_env(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENV, raising=False)
        assert main(["--replay", "scalar", "table2"]) == 0
        assert os.environ.get(REPLAY_ENV) == "scalar"

    def test_replay_equals_form(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENV, raising=False)
        assert main(["--replay=batched", "table2"]) == 0
        assert os.environ.get(REPLAY_ENV) == "batched"

    def test_replay_flag_rejects_unknown(self, capsys):
        assert main(["--replay", "vectorised", "table2"]) == 2
        assert "batched" in capsys.readouterr().err

    def test_unknown_option_rejected(self, capsys):
        assert main(["--frobnicate", "table2"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_list_mentions_options(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "--workers" in out and "--no-trace-cache" in out
        assert "--no-result-cache" in out and "--storage" in out
        assert "--force" in out and "--grid" in out
        assert "bench" in out and "sweep" in out
        assert "--replay" in out and "--saved" in out


class TestCliSweep:
    @pytest.fixture(autouse=True)
    def _isolated_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "traces"))
        monkeypatch.setenv(RESULT_CACHE_ENV, str(tmp_path / "results"))
        # The CLI writes flags straight into os.environ (monkeypatch can't
        # see that); restore them so e.g. --workers can't leak session-wide.
        keys = (WORKERS_ENV, FORCE_ENV, STORAGE_ENV, REPLAY_ENV)
        saved = {key: os.environ.get(key) for key in keys}
        yield
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    def test_sweep_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep",
            "--scheme", "PC_X32",
            "--bench", "gob",
            "--grid", "plb=4KiB,8KiB",
            "--misses", "120",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "geomean" in printed and f"wrote {out}" in printed
        import json

        report = json.loads(out.read_text("utf-8"))
        assert report["kind"] == "sweep"
        assert len(report["cells"]) == 2  # 2 grid points x 1 benchmark

    def test_sweep_spec_string_scheme(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep",
            "--scheme", "PC_X32:ways=2",
            "--bench", "gob",
            "--misses", "120",
            "--out", str(out),
        ])
        assert code == 0
        assert "plb_ways=2" in capsys.readouterr().out

    def test_sweep_bad_grid_rejected(self, capsys):
        assert main(["sweep", "--grid", "frobnication=1,2"]) == 2
        assert "sweep error" in capsys.readouterr().err

    def test_sweep_unknown_scheme_rejected(self, capsys):
        assert main(["sweep", "--scheme", "NOPE", "--bench", "gob"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_sweep_unknown_option_rejected(self, capsys):
        assert main(["sweep", "--frobnicate"]) == 2
        assert "unknown sweep option" in capsys.readouterr().err

    def test_sweep_after_experiment_is_unknown_experiment(self, capsys):
        assert main(["fig6", "sweep"]) == 2
        assert "sweep" in capsys.readouterr().err

    def test_flag_value_named_sweep_not_hijacked(self, tmp_path, capsys):
        """A cache dir literally called 'sweep' must not trigger the
        subcommand."""
        sweep_dir = tmp_path / "sweep"
        code = main(["--trace-cache", str(sweep_dir), "table2"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_global_flags_before_sweep_accepted(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = main([
            "--workers", "1", "sweep",
            "--scheme", "PC_X32", "--bench", "gob",
            "--misses", "120", "--out", str(out),
        ])
        assert code == 0 and out.exists()

    def test_sweep_bench_grid_axes(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep",
            "--scheme", "PC_X32",
            "--bench", "gob",
            "--grid", "misses=100,200",
            "--out", str(out),
        ])
        assert code == 0
        assert "misses=100" in capsys.readouterr().out
        import json

        report = json.loads(out.read_text("utf-8"))
        assert [cell["misses"] for cell in report["cells"]] == [100, 200]

    def test_saved_sweep_runs_fig5(self, tmp_path, capsys):
        out = tmp_path / "saved.json"
        code = main([
            "sweep", "--saved", "fig5",
            "--bench", "gob", "--misses", "120",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "geomean" in printed and f"wrote {out}" in printed
        import json

        report = json.loads(out.read_text("utf-8"))
        # The fig5 sweep: PC_X32 across the four PLB capacities.
        assert len(report["cells"]) == 4
        assert {c["spec"]["plb_capacity_bytes"] for c in report["cells"]} == {
            8 * 1024, 32 * 1024, 64 * 1024, 128 * 1024
        }

    def test_saved_sweep_default_out_names_figure(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "sweep", "--saved", "fig7", "--bench", "gob", "--misses", "120",
        ])
        assert code == 0
        assert (tmp_path / "SWEEP_fig7.json").exists()

    def test_saved_sweep_fig8_uses_platform_runner(self, tmp_path, capsys):
        out = tmp_path / "fig8.json"
        code = main([
            "sweep", "--saved", "fig8",
            "--bench", "gob", "--misses", "120",
            "--out", str(out),
        ])
        assert code == 0
        import json

        report = json.loads(out.read_text("utf-8"))
        # [26]'s parameters: every scheme row pins Z=3.
        assert all(
            c["spec"]["blocks_per_bucket"] == 3 for c in report["cells"]
        )

    def test_saved_rejects_unknown_figure(self, capsys):
        assert main(["sweep", "--saved", "fig99"]) == 2
        assert "fig5" in capsys.readouterr().err

    def test_saved_rejects_scheme_combination(self, capsys):
        code = main(["sweep", "--saved", "fig5", "--scheme", "PC_X32"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_serve_grid_axes_run_scenarios(self, tmp_path, capsys):
        out = tmp_path / "serve_sweep.json"
        code = main([
            "sweep",
            "--scheme", "PC_X32",
            "--bench", "gob",
            "--grid", "shards=1,2",
            "--misses", "120",
            "--out", str(out),
        ])
        assert code == 0
        assert "shards=2" in capsys.readouterr().out
        import json

        report = json.loads(out.read_text("utf-8"))
        assert [cell["shards"] for cell in report["cells"]] == [1, 2]
        assert all(cell["serve"]["kind"] == "serve" for cell in report["cells"])


class TestCliServe:
    @pytest.fixture(autouse=True)
    def _isolated_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "traces"))
        monkeypatch.setenv(RESULT_CACHE_ENV, str(tmp_path / "results"))

    def test_serve_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = main([
            "serve",
            "--tenants", "2", "--shards", "2",
            "--bench", "gob", "--bench", "hmmer",
            "--requests", "40", "--misses", "150",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "2 tenant(s) on 2 shard(s)" in printed
        assert f"wrote {out}" in printed
        import json

        report = json.loads(out.read_text("utf-8"))
        assert report["kind"] == "serve"
        assert [t["name"] for t in report["tenants"]] == ["t0:gob", "t1:hmmer"]
        assert report["totals"]["requests"] == 80

    def test_serve_demo_preset(self, tmp_path, capsys):
        out = tmp_path / "demo.json"
        # Explicit flags override the demo presets (smaller here for speed)
        # while still exercising the demo roster, which includes a mix.
        code = main([
            "serve", "--demo",
            "--requests", "30", "--misses", "150",
            "--out", str(out),
        ])
        assert code == 0
        import json

        report = json.loads(out.read_text("utf-8"))
        assert len(report["tenants"]) == 4
        assert len(report["shards"]) == 2
        assert any("+" in t["benchmark"] for t in report["tenants"])

    def test_serve_async_mode(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = main([
            "serve", "--tenants", "1", "--bench", "gob",
            "--requests", "25", "--misses", "150", "--mode", "async",
            "--out", str(out),
        ])
        assert code == 0
        assert "mode async" in capsys.readouterr().out

    def test_serve_rejects_unknown_option(self, capsys):
        assert main(["serve", "--frobnicate"]) == 2
        assert "unknown serve option" in capsys.readouterr().err

    def test_serve_rejects_bad_policy(self, capsys):
        assert main(["serve", "--policy", "panic"]) == 2
        err = capsys.readouterr().err
        # The parse-time message enumerates every valid policy, throttle
        # included, so the rejection doubles as discovery.
        assert "defer" in err and "shed" in err and "throttle" in err

    def test_serve_rejects_bad_admission_order(self, capsys):
        assert main(["serve", "--admission", "lifo"]) == 2
        err = capsys.readouterr().err
        assert "edf" in err and "fifo" in err

    def test_serve_rejects_bad_mode(self, capsys):
        assert main(["serve", "--mode", "threads"]) == 2
        assert "serial" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["-3", "0", "x"])
    @pytest.mark.parametrize(
        "flag",
        ["--queue-cap", "--deadline", "--quota", "--throttle-epochs",
         "--degrade-after", "--recover-after"],
    )
    def test_serve_rejects_non_positive_slo_knobs(self, capsys, flag, value):
        assert main(["serve", flag, value]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_serve_slo_flags_reach_the_report(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        code = main([
            "serve", "--tenants", "1", "--bench", "gob",
            "--requests", "20", "--misses", "150",
            "--policy", "throttle", "--admission", "edf",
            "--deadline", "2000", "--quota", "4",
            "--degrade-after", "3", "--recover-after", "2",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "resilience:" in printed and "degradation" in printed
        import json

        report = json.loads(out.read_text("utf-8"))
        assert report["config"]["policy"] == "throttle"
        assert report["config"]["admission"] == "edf"
        assert report["config"]["degrade_after"] == 3
        assert report["config"]["recover_after"] == 2
        assert "resilience" in report
        assert report["tenants"][0]["deadline_missed"] >= 0

    def test_serve_unknown_benchmark_is_serve_error(self, capsys):
        code = main(["serve", "--bench", "nonesuch", "--requests", "5"])
        assert code == 2
        assert "serve error" in capsys.readouterr().err

    def test_serve_rejects_non_positive_counts(self, capsys):
        assert main(["serve", "--tenants", "0"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_list_mentions_serve(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "--tenants" in out and "--policy" in out
