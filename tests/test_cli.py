"""CLI dispatch."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table2", "fig6", "hashbw"):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_multiple_names(self, capsys):
        assert main(["compression", "hashbw"]) == 0
        out = capsys.readouterr().out
        assert "compressed PosMap" in out
        assert "68x" in out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) >= {
            "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table2", "table3", "hashbw", "compression",
        }
