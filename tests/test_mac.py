"""MAC behaviour: verification, forgery resistance, instrumentation."""

import pytest

from repro.crypto.mac import Mac


@pytest.mark.parametrize("mode", [Mac.MODE_SHA3, Mac.MODE_FAST])
class TestMacModes:
    def _mac(self, mode, tag_bytes=14):
        return Mac(b"mac-test-key", mode=mode, tag_bytes=tag_bytes)

    def test_verify_accepts_genuine(self, mode):
        mac = self._mac(mode)
        tag = mac.tag(b"message")
        assert mac.verify(b"message", tag)

    def test_verify_rejects_modified_message(self, mode):
        mac = self._mac(mode)
        tag = mac.tag(b"message")
        assert not mac.verify(b"messagf", tag)

    def test_verify_rejects_modified_tag(self, mode):
        mac = self._mac(mode)
        tag = bytearray(mac.tag(b"message"))
        tag[0] ^= 1
        assert not mac.verify(b"message", bytes(tag))

    def test_tag_length(self, mode):
        assert len(self._mac(mode, tag_bytes=10).tag(b"x")) == 10

    def test_keys_separate(self, mode):
        a = Mac(b"key-a", mode=mode)
        b = Mac(b"key-b", mode=mode)
        assert a.tag(b"m") != b.tag(b"m")

    def test_block_tag_binds_counter(self, mode):
        mac = self._mac(mode)
        assert mac.block_tag(1, 7, b"d") != mac.block_tag(2, 7, b"d")

    def test_block_tag_binds_address(self, mode):
        mac = self._mac(mode)
        assert mac.block_tag(1, 7, b"d") != mac.block_tag(1, 8, b"d")

    def test_block_tag_binds_data(self, mode):
        mac = self._mac(mode)
        assert mac.block_tag(1, 7, b"d1") != mac.block_tag(1, 7, b"d2")

    def test_counters_track_bytes(self, mode):
        mac = self._mac(mode)
        mac.tag(b"ab")
        mac.tag(b"cdef")
        assert mac.call_count == 2
        assert mac.bytes_hashed == 6

    def test_reset_counters(self, mode):
        mac = self._mac(mode)
        mac.tag(b"abc")
        mac.reset_counters()
        assert mac.call_count == 0
        assert mac.bytes_hashed == 0


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Mac(b"k", mode="crc32")

    def test_tag_bytes_bounds(self):
        with pytest.raises(ValueError):
            Mac(b"k", tag_bytes=0)
        with pytest.raises(ValueError):
            Mac(b"k", tag_bytes=29)

    def test_sha3_mode_is_sha3(self):
        """Reference mode must actually be SHA3-224(K || m) truncated."""
        import hashlib

        mac = Mac(b"kk", mode=Mac.MODE_SHA3, tag_bytes=14)
        expected = hashlib.sha3_224(b"kk" + b"msg").digest()[:14]
        assert mac.tag(b"msg") == expected
