"""The shipped examples must run clean and demonstrate their claims."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    def test_runs_and_reads_back(self):
        out = run_example("quickstart.py")
        assert "attack at dawn" in out
        assert "PLB hits" in out


class TestSecureCloudDatabase:
    def test_oblivious_traces_uniform(self):
        out = run_example("secure_cloud_database.py")
        assert "uniform random paths" in out
        assert "identifies the hot record" in out

    def test_plain_store_leaks(self):
        out = run_example("secure_cloud_database.py")
        assert "1 distinct address(es)" in out


class TestTamperDetection:
    def test_all_attacks_resolve_correctly(self):
        out = run_example("tamper_detection.py")
        assert out.count("caught:") == 2
        assert "UNDETECTED" not in out
        assert "YES - two-time pad" in out  # bucket-seed breaks
        assert "no - fresh pad" in out  # global-seed holds


class TestDesignSpaceExploration:
    @pytest.mark.slow
    def test_tables_render(self):
        out = run_example("design_space_exploration.py", timeout=900)
        assert "Scheme comparison" in out
        assert "PLB capacity sweep" in out
        assert "PC_X32" in out
