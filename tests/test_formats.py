"""PosMap block formats: geometry, remapping, counters, group remaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.frontend.formats import (
    CompressedPosMapFormat,
    FlatCounterPosMapFormat,
    UncompressedPosMapFormat,
)
from repro.utils.rng import DeterministicRng


@pytest.fixture
def prf():
    return Prf(b"format-test-key")


class TestUncompressed:
    def test_paper_fanout(self):
        """64-byte blocks with 4-byte leaves give X = 16 (§5.3)."""
        fmt = UncompressedPosMapFormat(64, levels=20)
        assert fmt.fanout == 16

    def test_remap_writes_new_leaf(self):
        fmt = UncompressedPosMapFormat(64, levels=10)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(1)
        result = fmt.remap(data, 3, 0, rng)
        assert result.old_leaf == 0
        assert fmt.leaf_of(bytes(data), 3, 0) == result.new_leaf
        assert 0 <= result.new_leaf < 1024

    def test_remap_leaves_other_slots_alone(self):
        fmt = UncompressedPosMapFormat(64, levels=10)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(1)
        fmt.remap(data, 5, 0, rng)
        for slot in range(fmt.fanout):
            if slot != 5:
                assert fmt.leaf_of(bytes(data), slot, 0) == 0

    def test_no_counters(self):
        fmt = UncompressedPosMapFormat(64, levels=10)
        with pytest.raises(ConfigurationError):
            fmt.counter_of(fmt.initial_block(), 0)

    def test_indivisible_block_rejected(self):
        with pytest.raises(ConfigurationError):
            UncompressedPosMapFormat(63, levels=10)

    def test_leaf_too_wide_rejected(self):
        with pytest.raises(ConfigurationError):
            UncompressedPosMapFormat(64, levels=32, leaf_bytes=4)


class TestFlatCounter:
    def test_paper_fanout(self):
        """64-byte blocks with 64-bit counters give X = 8 (§6.2.2)."""
        fmt = FlatCounterPosMapFormat(64, levels=20, prf=Prf(b"k"))
        assert fmt.fanout == 8

    def test_remap_increments(self, prf):
        fmt = FlatCounterPosMapFormat(64, levels=12, prf=prf)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        r1 = fmt.remap(data, 2, 99, rng)
        r2 = fmt.remap(data, 2, 99, rng)
        assert (r1.old_counter, r1.new_counter) == (0, 1)
        assert (r2.old_counter, r2.new_counter) == (1, 2)

    def test_leaf_derived_from_prf(self, prf):
        fmt = FlatCounterPosMapFormat(64, levels=12, prf=prf)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        result = fmt.remap(data, 0, 7, rng)
        assert result.old_leaf == prf.leaf_for(7, 0, 12)
        assert result.new_leaf == prf.leaf_for(7, 1, 12)
        assert fmt.leaf_of(bytes(data), 0, 7) == result.new_leaf

    def test_no_group_remaps(self, prf):
        fmt = FlatCounterPosMapFormat(64, levels=12, prf=prf)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        for _ in range(100):
            assert fmt.remap(data, 1, 5, rng).group_remap_slots == []


class TestCompressed:
    def test_paper_geometry(self, prf):
        """512-bit block, alpha=64, beta=14 packs X' = 32 (§5.3)."""
        fmt = CompressedPosMapFormat(64, levels=20, prf=prf)
        assert fmt.fanout == 32
        assert fmt.alpha_bits == 64
        assert fmt.beta_bits == 14

    def test_explicit_fanout_validated(self, prf):
        with pytest.raises(ConfigurationError):
            CompressedPosMapFormat(64, levels=20, prf=prf, fanout=33)
        assert CompressedPosMapFormat(64, levels=20, prf=prf, fanout=16).fanout == 16

    def test_counter_composition(self, prf):
        fmt = CompressedPosMapFormat(64, levels=12, prf=prf, beta_bits=4)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        for expected in range(1, 10):
            result = fmt.remap(data, 0, 3, rng)
            assert result.new_counter == expected
        assert fmt.group_counter(bytes(data)) == 0
        assert fmt.individual_counter(bytes(data), 0) == 9

    def test_group_remap_on_rollover(self, prf):
        """IC hitting 2^beta - 1 bumps GC and resets every IC (§5.2.2)."""
        beta = 3
        fmt = CompressedPosMapFormat(64, levels=12, prf=prf, beta_bits=beta)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        # Give slot 1 some history so its old counter is nonzero.
        fmt.remap(data, 1, 100, rng)
        fmt.remap(data, 1, 100, rng)
        result = None
        for _ in range((1 << beta) - 1):
            result = fmt.remap(data, 0, 99, rng)
        assert result.group_remap_slots == []
        result = fmt.remap(data, 0, 99, rng)  # rollover
        assert fmt.group_counter(bytes(data)) == 1
        assert result.new_counter == 1 << beta
        slots = dict(result.group_remap_slots)
        assert 0 not in slots
        assert slots[1] == 2  # old counter of slot 1 preserved for relocation
        assert len(slots) == fmt.fanout - 1
        for slot in range(fmt.fanout):
            assert fmt.individual_counter(bytes(data), slot) == 0

    def test_counters_strictly_increase_across_rollover(self, prf):
        """The PMMAC freshness argument needs monotone counters (§6.5.1)."""
        fmt = CompressedPosMapFormat(64, levels=12, prf=prf, beta_bits=3)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        last = -1
        for _ in range(40):
            result = fmt.remap(data, 0, 5, rng)
            assert result.new_counter > last
            assert result.new_counter > result.old_counter
            last = result.new_counter

    def test_leaf_for_counter_matches_remap(self, prf):
        fmt = CompressedPosMapFormat(64, levels=12, prf=prf)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        result = fmt.remap(data, 4, 77, rng)
        assert fmt.leaf_for_counter(77, result.new_counter) == result.new_leaf

    def test_alpha_overflow_detected(self, prf):
        fmt = CompressedPosMapFormat(64, levels=12, prf=prf, alpha_bits=1, beta_bits=1, fanout=4)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        fmt.remap(data, 0, 0, rng)
        fmt.remap(data, 0, 0, rng)  # first group remap: GC 0 -> 1
        fmt.remap(data, 0, 0, rng)
        with pytest.raises(ConfigurationError):
            fmt.remap(data, 0, 0, rng)  # GC 1 -> 2 does not fit in 1 bit

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
    def test_per_slot_counters_monotone_any_interleaving(self, slots):
        """Counters never repeat for any slot under any access pattern."""
        prf = Prf(b"prop-key")
        fmt = CompressedPosMapFormat(64, levels=10, prf=prf, beta_bits=3, fanout=8)
        data = bytearray(fmt.initial_block())
        rng = DeterministicRng(0)
        last = {}
        for slot in slots:
            result = fmt.remap(data, slot, slot, rng)
            assert result.new_counter > last.get(slot, -1)
            last[slot] = result.new_counter
            # Group remaps advance *other* slots' counters too.
            for other, _old in result.group_remap_slots:
                last[other] = result.new_counter
