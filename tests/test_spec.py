"""Declarative SchemeSpec layer: round-trips, registry, validation, runner."""

import pytest

from repro.errors import ReproError, SpecError
from repro.frontend.linear import LinearFrontend
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.spec import (
    FIELD_ALIASES,
    SPEC_FIELDS,
    SchemeSpec,
    decompose_spec,
    get_spec,
    parse_size,
    register,
    resolve_spec,
    spec_label,
    spec_names,
)

ALL_NAMES = ("R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32", "PC_X64", "phantom_4kb")


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        assert set(spec_names()) >= set(ALL_NAMES)

    def test_fanouts_match_paper_names(self):
        assert get_spec("R_X8").fanout == 8
        assert get_spec("P_X16").fanout == 16
        assert get_spec("PC_X32").fanout == 32
        assert get_spec("PI_X8").fanout == 8
        assert get_spec("PIC_X32").fanout == 32
        assert get_spec("PC_X64").fanout == 64
        assert get_spec("phantom_4kb").fanout == 0

    def test_default_spec_is_p_x16(self):
        """The bare SchemeSpec() reproduces the P_X16 simulation defaults."""
        assert SchemeSpec() == get_spec("P_X16")

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(SpecError, match="R_X8"):
            get_spec("QQQ")

    def test_register_refuses_silent_redefinition(self):
        with pytest.raises(SpecError, match="already registered"):
            register("PC_X32", SchemeSpec())

    def test_register_rejects_minilanguage_chars(self):
        with pytest.raises(SpecError):
            register("bad:name", SchemeSpec())

    def test_register_custom_scheme_round_trips(self):
        name = "test_custom_scheme"
        if name not in spec_names():
            register(name, SchemeSpec(posmap_format="compressed", plb_ways=4))
        spec = SchemeSpec.from_string(name)
        assert spec.plb_ways == 4
        assert spec.to_string() == name

    def test_spec_error_is_repro_and_value_error(self):
        with pytest.raises(ReproError):
            get_spec("QQQ")
        with pytest.raises(ValueError):
            get_spec("QQQ")


class TestRoundTrips:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_registered_specs_render_as_their_name(self, name):
        assert get_spec(name).to_string() == name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_string_round_trip_exact(self, name):
        spec = get_spec(name)
        assert SchemeSpec.from_string(spec.to_string()) == spec

    @pytest.mark.parametrize(
        "changes",
        [
            {"plb_capacity_bytes": 32 * 1024},
            {"storage": "array"},
            {"plb_ways": 4, "onchip_entries": 2**12},
            {"compressed_fanout": 16},
            {"crypto": "reference", "num_blocks": 2**10},
        ],
    )
    def test_modified_spec_round_trips(self, changes):
        spec = get_spec("PIC_X32").with_(**changes)
        assert SchemeSpec.from_string(spec.to_string()) == spec

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_dict_round_trip_exact(self, name):
        spec = get_spec(name)
        assert SchemeSpec.from_dict(spec.to_dict()) == spec

    def test_decompose_prefers_nearest_base(self):
        spec = get_spec("PIC_X32").with_(plb_capacity_bytes=8192)
        name, deltas = decompose_spec(spec)
        assert name == "PIC_X32"
        assert deltas == {"plb_capacity_bytes": 8192}

    def test_canonical_covers_every_field(self):
        canonical = SchemeSpec().canonical()
        for field_name in SPEC_FIELDS:
            assert f"{field_name}=" in canonical

    def test_canonical_distinguishes_specs(self):
        seen = {get_spec(name).canonical() for name in ALL_NAMES}
        assert len(seen) == len(ALL_NAMES)
        assert (
            SchemeSpec().canonical()
            != SchemeSpec().with_(plb_ways=2).canonical()
        )


class TestMiniLanguage:
    def test_alias_and_size_parsing(self):
        spec = SchemeSpec.from_string("PIC_X32:plb=32KiB,storage=array")
        assert spec.plb_capacity_bytes == 32 * 1024
        assert spec.storage == "array"
        assert spec.pmmac and spec.posmap_format == "compressed"

    def test_full_field_names_accepted(self):
        spec = SchemeSpec.from_string("P_X16:plb_capacity_bytes=8192,plb_ways=2")
        assert spec.plb_capacity_bytes == 8192
        assert spec.plb_ways == 2

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64", 64), ("32KiB", 32768), ("1MiB", 1 << 20), ("2k", 2048),
            ("0x40", 64), ("1_024", 1024), ("4g", 1 << 32), ("24b", 24),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_size_rejects_junk(self):
        with pytest.raises(SpecError):
            parse_size("lots")
        with pytest.raises(SpecError, match="whole number"):
            parse_size("0.3KiB")

    def test_bool_and_none_values(self):
        assert SchemeSpec.from_string("PIC_X32:pmmac=false").pmmac is False
        assert SchemeSpec.from_string("PC_X32:fanout=16").compressed_fanout == 16
        assert SchemeSpec.from_string("PC_X32:fanout=none").compressed_fanout is None

    def test_unknown_field_names_valid_fields(self):
        with pytest.raises(SpecError, match="plb_capacity_bytes"):
            SchemeSpec.from_string("PC_X32:frobnication=7")

    def test_malformed_option_rejected(self):
        with pytest.raises(SpecError, match="field=value"):
            SchemeSpec.from_string("PC_X32:plb")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SpecError, match="unknown scheme"):
            SchemeSpec.from_string("ZZZ:plb=1KiB")

    def test_empty_spec_rejected(self):
        with pytest.raises(SpecError):
            SchemeSpec.from_string("   ")

    def test_spec_label_normalizes(self):
        assert spec_label("PC_X32:plb=8KiB") == "PC_X32:plb_capacity_bytes=8192"
        assert spec_label(get_spec("R_X8")) == "R_X8"

    def test_aliases_map_to_real_fields(self):
        for alias, target in FIELD_ALIASES.items():
            assert target in SPEC_FIELDS, alias


class TestValidation:
    def test_with_unknown_field_raises_naming_fields(self):
        with pytest.raises(SpecError, match="valid fields"):
            SchemeSpec().with_(plb_capacity=1)

    def test_with_returns_new_frozen_instance(self):
        base = get_spec("PC_X32")
        derived = base.with_(plb_capacity_bytes=8192)
        assert derived is not base
        assert base.plb_capacity_bytes == 64 * 1024
        with pytest.raises(Exception):
            derived.plb_capacity_bytes = 1  # frozen

    def test_from_dict_unknown_key(self):
        with pytest.raises(SpecError, match="valid fields"):
            SchemeSpec.from_dict({"bogus": 1})

    def test_pmmac_requires_plb_frontend(self):
        with pytest.raises(SpecError, match="pmmac"):
            SchemeSpec(frontend="recursive", pmmac=True)

    def test_nondefault_crypto_requires_plb_frontend(self):
        """R_X8/phantom take no crypto suite; a non-default selection must
        fail loudly instead of being silently ignored (and re-keying the
        result cache for an identical run)."""
        with pytest.raises(SpecError, match="crypto"):
            SchemeSpec(frontend="recursive", crypto="reference")
        with pytest.raises(SpecError, match="crypto"):
            SchemeSpec.from_string("phantom_4kb:crypto=reference")

    @pytest.mark.parametrize(
        "changes",
        [
            {"frontend": "quantum"},
            {"posmap_format": "zip"},
            {"storage": "tape"},
            {"crypto": "rot13"},
            {"num_blocks": 0},
            {"plb_ways": -1},
            {"compressed_fanout": 0},
        ],
    )
    def test_bad_values_rejected(self, changes):
        with pytest.raises(SpecError):
            SchemeSpec().with_(**changes)

    def test_resolve_spec_rejects_other_types(self):
        with pytest.raises(SpecError):
            resolve_spec(42)


class TestBuild:
    def test_builds_expected_frontend_types(self):
        assert isinstance(get_spec("R_X8").with_(num_blocks=2**10).build(),
                          RecursiveFrontend)
        assert isinstance(get_spec("PIC_X32").with_(num_blocks=2**10).build(),
                          PlbFrontend)
        assert isinstance(get_spec("phantom_4kb").with_(num_blocks=2**6).build(),
                          LinearFrontend)

    def test_built_plb_geometry_matches_spec(self):
        spec = get_spec("PC_X32").with_(
            num_blocks=2**10, plb_capacity_bytes=8192, plb_ways=2
        )
        frontend = spec.build()
        assert frontend.plb.capacity_bytes == 8192
        assert frontend.plb.ways == 2
        assert frontend.format.fanout == spec.fanout

    def test_reference_crypto_kind_selects_aes_suite(self):
        spec = get_spec("PIC_X32").with_(num_blocks=2**8, crypto="reference")
        frontend = spec.build()
        assert frontend.crypto.prf.mode == "aes"


class TestRunnerSpecs:
    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        from repro.sim.runner import SimulationRunner

        return SimulationRunner(
            misses_per_benchmark=150,
            cache_dir=tmp_path_factory.mktemp("spec-traces"),
            result_cache_dir=tmp_path_factory.mktemp("spec-results"),
        )

    def test_unknown_override_raises_spec_error(self, runner):
        with pytest.raises(SpecError, match="valid fields"):
            runner.build("PC_X32", "gob", plb_capacity=8192)

    def test_unknown_override_in_run_one(self, runner):
        with pytest.raises(ReproError, match="valid fields"):
            runner.run_one("PC_X32", "gob", frobnicate=True)

    def test_spec_string_scheme(self, runner):
        frontend = runner.build("PC_X32:plb=8KiB,ways=2", "gob")
        assert frontend.plb.capacity_bytes == 8192
        assert frontend.plb.ways == 2

    def test_spec_object_scheme(self, runner):
        spec = get_spec("PC_X32").with_(plb_capacity_bytes=16 * 1024)
        frontend = runner.build(spec, "gob")
        assert frontend.plb.capacity_bytes == 16 * 1024

    def test_runner_sizes_under_explicit_deltas(self, runner):
        """Working-set sizing applies, but never clobbers explicit deltas."""
        spec, label = runner.sized_spec("PC_X32:plb=8KiB", "gob")
        assert spec.plb_capacity_bytes == 8192  # delta wins
        assert spec.block_bytes == runner.proc.line_bytes  # sizing fills
        assert label == "PC_X32:plb_capacity_bytes=8192"

    def test_string_delta_at_registry_default_is_pinned(self, runner):
        """A spec-string delta equal to the base's default is still the
        user's explicit choice — it must survive runner sizing (which
        would otherwise set onchip_entries to the runner default 1024)."""
        spec, label = runner.sized_spec("PC_X32:onchip=2048", "gob")
        assert spec.onchip_entries == 2048
        assert label == "PC_X32:onchip_entries=2048"
        bare_spec, bare_label = runner.sized_spec("PC_X32", "gob")
        assert bare_spec.onchip_entries == runner.onchip_entries
        assert bare_label == "PC_X32"

    def test_run_one_matches_between_spellings(self, runner):
        """One configuration, three spellings: identical simulated outcome.

        The scheme *label* differs on purpose (per-call overrides keep the
        bare paper name for result tables; spec strings carry their deltas)
        — every simulated field must nevertheless be bit-identical.
        """
        import dataclasses

        via_override = runner.run_one("PC_X32", "gob", plb_capacity_bytes=8192)
        via_string = runner.run_one("PC_X32:plb=8KiB", "gob")
        via_spec = runner.run_one(
            get_spec("PC_X32").with_(plb_capacity_bytes=8192), "gob"
        )
        assert via_string == via_spec  # same label, same cache cell
        assert via_override.scheme == "PC_X32"
        assert via_string.scheme == "PC_X32:plb_capacity_bytes=8192"
        strip = lambda r: {
            k: v for k, v in dataclasses.asdict(r).items() if k != "scheme"
        }
        assert strip(via_override) == strip(via_string)

    def test_run_suite_label_keys(self, runner):
        out = runner.run_suite(
            ["R_X8", get_spec("PC_X32").with_(plb_capacity_bytes=8192)], ["gob"]
        )
        assert list(out) == ["R_X8", "PC_X32:plb_capacity_bytes=8192"]
        for row in out.values():
            assert row["gob"].oram_accesses > 0
