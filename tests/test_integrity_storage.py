"""Integrity layer vs the active adversary, across every block store.

The paper's integrity guarantees (PMMAC §6.2, the Merkle baseline §6.3)
are properties of the *scheme*, not of the tree's in-memory
representation — so tampered buckets and replayed (stale) counters must
be detected **identically** whether the tree lives as bucket objects,
array-geometry buckets, or columnar slot arenas. Each scenario here runs
the same seeded attack under ``storage=object/array/columnar`` and
asserts not just "detected" but *detected at the same access index*.

Also covers the Merkle adapter over all three storages (via the columnar
store's bucket-object compatibility path) and the negative control: with
no integrity layer, the same tampering silently succeeds everywhere.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.adversary.tamper import StorageTamperer
from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend, make_backend
from repro.config import OramConfig
from repro.crypto.mac import Mac
from repro.errors import IntegrityViolationError
from repro.integrity.adapter import MerkleVerifiedStorage
from repro.presets import build_frontend
from repro.storage import make_storage
from repro.utils.rng import DeterministicRng

STORAGES = ("object", "array", "columnar")

#: Small PMMAC frontends so tampering targets land in the tree quickly.
PMMAC_KWARGS = dict(
    num_blocks=2**8,
    onchip_entries=2**3,
    plb_capacity_bytes=1024,
)


def pmmac_frontend(storage: str, posmap_format: str = "flat"):
    scheme = "PI_X8" if posmap_format == "flat" else "PIC_X32"
    return build_frontend(
        scheme, rng=DeterministicRng(19), storage=storage, **PMMAC_KWARGS
    )


def detection_step(frontend, addr: int, rounds: int = 80) -> Optional[int]:
    """First access index at which reading ``addr`` raises, or None."""
    for step in range(rounds):
        try:
            frontend.read(addr)
        except IntegrityViolationError:
            return step
    return None


@pytest.mark.parametrize("posmap_format", ["flat", "compressed"])
class TestPmmacTamperAcrossStorages:
    """Data corruption / MAC corruption / deletion / counter replay."""

    def _prepared(self, posmap_format):
        """One frontend per storage, driven through identical traffic."""
        frontends = {}
        for storage in STORAGES:
            frontend = pmmac_frontend(storage, posmap_format)
            frontend.write(42, b"\xAA" * 64)
            rng = DeterministicRng(2)
            for _ in range(60):
                frontend.read(rng.randrange(2**8))
            frontends[storage] = frontend
        return frontends

    def _assert_identical_detection(self, frontends, attack):
        steps = {}
        for storage, frontend in frontends.items():
            tamperer = StorageTamperer(frontend.backend.storage)
            if not attack(tamperer, frontend):
                pytest.skip("block still in stash after traffic (rare)")
            steps[storage] = detection_step(frontend, 42)
        assert steps["object"] is not None, "tampering went undetected"
        assert steps["object"] == steps["array"] == steps["columnar"]

    def test_data_corruption_detected_identically(self, posmap_format):
        self._assert_identical_detection(
            self._prepared(posmap_format),
            lambda tamperer, _frontend: tamperer.corrupt_data(42, byte_offset=5),
        )

    def test_mac_corruption_detected_identically(self, posmap_format):
        self._assert_identical_detection(
            self._prepared(posmap_format),
            lambda tamperer, _frontend: tamperer.corrupt_mac(42),
        )

    def test_block_deletion_detected_identically(self, posmap_format):
        """Erasure cannot masquerade as never-written (counter > 0)."""
        self._assert_identical_detection(
            self._prepared(posmap_format),
            lambda tamperer, _frontend: tamperer.delete_block(42),
        )

    def test_replayed_counters_detected_identically(self, posmap_format):
        """Whole-tree rollback: stale counters must fail freshness checks."""
        steps = {}
        for storage in STORAGES:
            frontend = pmmac_frontend(storage, posmap_format)
            frontend.write(7, b"\x01" * 64)
            rng = DeterministicRng(3)
            for _ in range(30):
                frontend.read(rng.randrange(2**8))
            tamperer = StorageTamperer(frontend.backend.storage)
            tamperer.snapshot()
            frontend.write(7, b"\x02" * 64)
            for _ in range(30):
                frontend.read(rng.randrange(2**8))
            tamperer.replay_all()
            step = None
            for index in range(120):
                try:
                    frontend.read(rng.randrange(2**8))
                except IntegrityViolationError:
                    step = index
                    break
            steps[storage] = step
        assert steps["object"] is not None, "replay attack went undetected"
        assert steps["object"] == steps["array"] == steps["columnar"]


class TestNoIntegrityNegativeControl:
    """Without PMMAC the same corruption silently succeeds — everywhere."""

    def test_corruption_undetected_without_pmmac(self):
        outcomes = {}
        for storage in STORAGES:
            frontend = build_frontend(
                "P_X16",
                rng=DeterministicRng(19),
                storage=storage,
                **PMMAC_KWARGS,
            )
            frontend.write(42, b"\xAA" * 64)
            rng = DeterministicRng(2)
            for _ in range(60):
                frontend.read(rng.randrange(2**8))
            tamperer = StorageTamperer(frontend.backend.storage)
            if not tamperer.corrupt_data(42, byte_offset=5):
                pytest.skip("block still in stash after traffic (rare)")
            outcomes[storage] = frontend.read(42)
        # The flipped bit reads back unnoticed, identically corrupted.
        assert outcomes["object"] == outcomes["array"] == outcomes["columnar"]
        assert outcomes["object"] != b"\xAA" * 64


class TestMerkleAcrossStorages:
    """The [25]-style Merkle baseline detects tampering over any inner store."""

    def _verified_backend(self, storage_kind: str):
        config = OramConfig(num_blocks=2**6, block_bytes=32)
        inner = make_storage(storage_kind, config)
        verified = MerkleVerifiedStorage(inner, Mac(b"merkle-key-tests"))
        backend = make_backend(config, verified, DeterministicRng(5))
        # The adapter is a bucket-object storage, so every inner kind —
        # columnar included, via its compatibility path — must drive the
        # object backend.
        assert isinstance(backend, PathOramBackend)
        return config, inner, backend

    @pytest.mark.parametrize("storage_kind", STORAGES)
    def test_honest_operation_verifies(self, storage_kind):
        config, _inner, backend = self._verified_backend(storage_kind)
        rng = DeterministicRng(11)
        posmap = {}
        for step in range(80):
            addr = rng.randrange(32)
            new_leaf = rng.random_leaf(config.levels)

            def update(block, step=step):
                block.data = bytes([step % 256]) * 32

            backend.access(Op.WRITE, addr, posmap.get(addr, 0), new_leaf,
                           update=update)
            posmap[addr] = new_leaf

    @pytest.mark.parametrize("storage_kind", STORAGES)
    def test_bucket_tamper_detected(self, storage_kind):
        config, inner, backend = self._verified_backend(storage_kind)
        rng = DeterministicRng(11)
        posmap = {}
        for _ in range(40):
            addr = rng.randrange(32)
            new_leaf = rng.random_leaf(config.levels)
            backend.access(Op.READ, addr, posmap.get(addr, 0), new_leaf)
            posmap[addr] = new_leaf
        tamperer = StorageTamperer(inner)
        target = next(a for a in posmap if tamperer.find(a) is not None)
        assert tamperer.corrupt_data(target)
        with pytest.raises(IntegrityViolationError, match="Merkle root"):
            backend.access(Op.READ, target, posmap[target], 0)

    @pytest.mark.parametrize("storage_kind", STORAGES)
    def test_bucket_replay_detected(self, storage_kind):
        """Restoring a stale bucket image breaks the hash chain."""
        config, inner, backend = self._verified_backend(storage_kind)
        rng = DeterministicRng(11)
        posmap = {}

        def traffic(rounds):
            for step in range(rounds):
                addr = rng.randrange(32)
                new_leaf = rng.random_leaf(config.levels)

                def update(block, step=step):
                    block.data = bytes([step % 256]) * 32

                backend.access(Op.WRITE, addr, posmap.get(addr, 0), new_leaf,
                               update=update)
                posmap[addr] = new_leaf

        traffic(30)
        tamperer = StorageTamperer(inner)
        tamperer.snapshot()
        traffic(30)
        tamperer.replay_all()
        with pytest.raises(IntegrityViolationError, match="Merkle root"):
            traffic(40)

    def test_merkle_detection_step_identical_across_storages(self):
        """Same seeded attack -> same first-failing access, all stores."""
        steps = {}
        for storage_kind in STORAGES:
            config, inner, backend = self._verified_backend(storage_kind)
            rng = DeterministicRng(13)
            posmap = {}
            for _ in range(40):
                addr = rng.randrange(32)
                new_leaf = rng.random_leaf(config.levels)
                backend.access(Op.READ, addr, posmap.get(addr, 0), new_leaf)
                posmap[addr] = new_leaf
            tamperer = StorageTamperer(inner)
            tamperer.snapshot()
            # Mutate then roll back one bucket on a known-resident path.
            target = next(a for a in posmap if tamperer.find(a) is not None)
            index, _position = tamperer.find(target)
            tamperer.corrupt_data(target)
            step = None
            for attempt in range(60):
                addr = rng.randrange(32)
                try:
                    backend.access(
                        Op.READ, addr, posmap.get(addr, 0),
                        rng.random_leaf(config.levels),
                    )
                except IntegrityViolationError:
                    step = attempt
                    break
            steps[storage_kind] = step
        assert steps["object"] is not None
        assert steps["object"] == steps["array"] == steps["columnar"]
