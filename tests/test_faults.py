"""Fault-injection plane: plan grammar, match counting, actions, retry."""

import os
import time

import pytest

from repro.errors import FaultKillPoint, InjectedFault, SpecError
from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active,
    clear,
    fault_hook,
    injected,
    install,
    install_from_env,
    parse,
)


class TestGrammar:
    def test_basic_entry(self):
        plan = parse("cell.crash@PC_X32/gob/1")
        (spec,) = plan.specs
        assert spec == FaultSpec(site="cell", action="crash", key="PC_X32/gob/1")

    def test_dotted_site_splits_on_last_dot(self):
        (spec,) = parse("serve.shard.stall@0").specs
        assert (spec.site, spec.action) == ("serve.shard", "stall")

    def test_key_may_contain_at_signs(self):
        # Derived benchmark names ("mcf@wss=8388608") appear inside keys.
        (spec,) = parse("cell.crash@PC_X32/mcf@wss=8388608/1").specs
        assert spec.key == "PC_X32/mcf@wss=8388608/1"

    def test_hits_and_params(self):
        (spec,) = parse("serve.shard.stall@0#2,4|epochs=3,secs=0.5").specs
        assert spec.hits == (2, 4)
        assert spec.params == {"epochs": "3", "secs": "0.5"}

    def test_multiple_entries_split_on_semicolon(self):
        plan = parse("cell.crash@*/1#1; worker.exit@*;")
        assert [s.action for s in plan.specs] == ["crash", "exit"]

    def test_roundtrip_via_to_entry(self):
        text = "serve.shard.stall@0#2|epochs=3"
        (spec,) = parse(text).specs
        assert parse(spec.to_entry()).specs[0] == spec

    @pytest.mark.parametrize(
        "bad, match",
        [
            ("cell.crash", "@keypat"),
            ("crash@*", "site.action"),
            ("cell.frobnicate@*", "unknown fault action"),
            ("cell.crash@*#x", "integers"),
            ("cell.crash@*#0", "1-based"),
            ("cell.crash@*|oops", "k=v"),
        ],
    )
    def test_rejects_malformed_entries(self, bad, match):
        with pytest.raises(SpecError, match=match):
            parse(bad)


class TestMatchCounting:
    def test_unconditional_fires_every_match(self):
        plan = parse("cell.crash@*")
        assert plan.match("cell", "a").action == "crash"
        assert plan.match("cell", "b").action == "crash"

    def test_hits_count_per_injector_across_varying_keys(self):
        # The injector's counter advances on every match, whatever the
        # key was — "#2" means "the second event this injector watches".
        plan = parse("sweep.interrupt@*#2")
        assert plan.match("sweep", "PC_X32/gob") is None
        assert plan.match("sweep", "PC_X32/mcf").action == "interrupt"
        assert plan.match("sweep", "PC_X32/hmmer") is None

    def test_pattern_scopes_the_counter(self):
        plan = parse("cell.crash@*/gob/*#2")
        assert plan.match("cell", "A/mcf/1") is None  # no match, no count
        assert plan.match("cell", "A/gob/1") is None  # match 1
        assert plan.match("cell", "B/gob/1").action == "crash"  # match 2

    def test_site_mismatch_never_counts(self):
        plan = parse("cell.crash@*#1")
        assert plan.match("worker", "x") is None
        assert plan.match("cell", "x").action == "crash"

    def test_fired_log_records_what_happened(self):
        plan = parse("cell.stall@*#1|secs=0")
        plan.fire("cell", "k")
        assert plan.fired == [("cell", "k", 1, "stall")]


class TestActions:
    def test_crash_raises_injected_fault(self):
        with injected("cell.crash@*") as plan:
            with pytest.raises(InjectedFault, match="cell@k"):
                fault_hook("cell", "k")
        assert plan.fired

    def test_kill_raises_kill_point(self):
        with injected("cache.write.kill@result/replace"):
            with pytest.raises(FaultKillPoint):
                fault_hook("cache.write", "result/replace")

    def test_interrupt_raises_keyboard_interrupt(self):
        with injected("sweep.interrupt@*"):
            with pytest.raises(KeyboardInterrupt):
                fault_hook("sweep", "x")

    def test_stall_sleeps_then_returns(self):
        with injected("cell.stall@*|secs=0.01"):
            start = time.perf_counter()
            fault_hook("cell", "x")
            assert time.perf_counter() - start >= 0.01

    def test_corrupt_flips_a_byte_keeping_length(self, tmp_path):
        path = tmp_path / "entry.bin"
        path.write_bytes(b"A" * 64)
        with injected("cache.entry.corrupt@*"):
            fault_hook("cache.entry", "trace/k", path)
        damaged = path.read_bytes()
        assert len(damaged) == 64 and damaged != b"A" * 64

    def test_truncate_shortens_deterministically(self, tmp_path):
        cuts = []
        for _ in range(2):
            path = tmp_path / "entry.bin"
            path.write_bytes(bytes(range(256)))
            with injected(parse("cache.entry.truncate@*", seed=7)):
                fault_hook("cache.entry", "trace/k", path)
            cuts.append(path.read_bytes())
        assert cuts[0] == cuts[1]
        assert len(cuts[0]) < 256
        assert bytes(range(256)).startswith(cuts[0])


class TestInstallation:
    def test_hook_is_noop_without_plan(self):
        clear()
        fault_hook("cell", "anything")  # must not raise

    def test_injected_restores_previous_plan(self):
        outer = FaultPlan([])
        install(outer)
        try:
            with injected("cell.crash@nothing"):
                assert active() is not outer
            assert active() is outer
        finally:
            clear()

    def test_install_from_env_parses_and_installs(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cell.crash@*#1")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
        plan = install_from_env()
        try:
            assert plan is active() and plan.seed == 9
        finally:
            clear()

    def test_install_from_env_keeps_inherited_plan_when_unset(self, monkeypatch):
        # A fork-inherited plan must survive a worker's install_from_env()
        # when the env var is absent.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        inherited = parse("cell.crash@never")
        install(inherited)
        try:
            assert install_from_env() is None
            assert active() is inherited
        finally:
            clear()


class TestRetryPolicy:
    def test_deterministic_geometric_backoff(self):
        policy = RetryPolicy(attempts=4, backoff=0.1, factor=2.0, max_backoff=0.3)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.0, 0.1, 0.2, 0.3]

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BASE", "0.25")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "30")
        policy = RetryPolicy.from_env()
        assert (policy.attempts, policy.backoff, policy.timeout) == (5, 0.25, 30.0)

    def test_from_env_defaults(self, monkeypatch):
        for env in ("REPRO_RETRIES", "REPRO_RETRY_BASE", "REPRO_CELL_TIMEOUT"):
            monkeypatch.delenv(env, raising=False)
        policy = RetryPolicy.from_env()
        assert policy.attempts >= 1 and policy.timeout is None
