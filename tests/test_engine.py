"""The shared replay engine core: batching is invisible to outcomes.

The serving layer and the offline replay kernels both drive
:class:`repro.sim.engine.ReplayEngine`; these tests pin the properties
that make that sharing sound — a sequence of ``run_batch`` calls is
bit-identical to one whole-trace call, ``result()`` matches
``replay_trace`` exactly, and delta counters are measured against the
engine's construction-time baselines.
"""

import pytest

from repro.config import ProcessorConfig
from repro.presets import build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.engine import ReplayEngine, frontend_block_bytes
from repro.sim.system import base_cycles, replay_trace
from repro.sim.timing import timing_for_frontend
from repro.utils.rng import DeterministicRng

BLOCKS = 2**9


def make_trace(seed: int, events: int) -> MissTrace:
    rng = DeterministicRng(seed)
    trace = MissTrace(
        name=f"engine-{seed}", instructions=40_000, mem_refs=15_000,
        l1_hits=11_000, l2_hits=2_500,
    )
    trace.events = [
        MissEvent(rng.randrange(BLOCKS), rng.random() < 0.3)
        for _ in range(events)
    ]
    return trace


def make_engine(seed: int = 1) -> ReplayEngine:
    frontend = build_frontend(
        "PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(seed)
    )
    return ReplayEngine(frontend, timing_for_frontend(frontend))


class TestEngineVsReplayTrace:
    def test_result_matches_replay_trace_exactly(self):
        trace = make_trace(3, 300)
        proc = ProcessorConfig()
        frontend = build_frontend(
            "PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(1)
        )
        expected = replay_trace(
            frontend, trace, timing_for_frontend(frontend), proc=proc,
            scheme="PC_X32",
        )
        engine = make_engine(seed=1)
        engine.cycles = base_cycles(trace, proc)
        engine.run_trace(trace)
        assert engine.result(trace, scheme="PC_X32") == expected

    def test_scalar_and_batched_kernels_agree(self):
        trace = make_trace(9, 250)
        batched, scalar = make_engine(2), make_engine(2)
        batched.run_trace(trace)
        scalar.run_trace_scalar(trace)
        assert batched.cycles == scalar.cycles
        assert batched.events == scalar.events == len(trace.events)
        assert (
            batched.result(trace).tree_accesses
            == scalar.result(trace).tree_accesses
        )


class TestBatchSplitting:
    @pytest.mark.parametrize("batch", [1, 7, 64, 1000])
    def test_chunked_batches_bit_identical_to_one_shot(self, batch):
        trace = make_trace(5, 280)
        whole, split = make_engine(4), make_engine(4)
        line_addrs, is_write = trace.columns()
        addrs = whole.translate(line_addrs)
        writes = list(map(bool, is_write.tolist()))

        whole.run_batch(addrs, writes)
        for start in range(0, len(addrs), batch):
            split.run_batch(
                addrs[start : start + batch], writes[start : start + batch]
            )

        assert split.cycles == whole.cycles
        assert split.result(trace) == whole.result(trace)

    def test_run_batch_returns_per_event_latencies(self):
        engine = make_engine()
        latencies = engine.run_batch([1, 2, 3, 1], [False, True, False, False])
        assert len(latencies) == 4
        total = 0.0
        for latency in latencies:
            assert latency > 0
            total += latency
        assert engine.cycles == pytest.approx(total)


class TestBaselines:
    def test_deltas_exclude_traffic_before_construction(self):
        frontend = build_frontend(
            "PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(8)
        )
        # Pre-serve some traffic, then hand the warm frontend to an engine.
        warmup = ReplayEngine(frontend, timing_for_frontend(frontend))
        warmup.run_batch([0, 1, 2], [True, False, False])
        engine = ReplayEngine(frontend, timing_for_frontend(frontend))
        trace = make_trace(2, 50)
        engine.run_trace(trace)
        fresh = make_engine(seed=8)
        fresh.run_batch([0, 1, 2], [True, False, False])
        baseline_bytes = fresh.frontend.data_bytes_moved
        assert (
            engine.result(trace).data_bytes
            == frontend.data_bytes_moved - baseline_bytes
        )


class TestBlockBytesProbe:
    def test_reads_config_and_configs(self):
        frontend = build_frontend(
            "PC_X32", num_blocks=BLOCKS, rng=DeterministicRng(1)
        )
        assert frontend_block_bytes(frontend) == frontend.config.block_bytes

    def test_rejects_frontendless_objects(self):
        with pytest.raises(TypeError, match="block_bytes"):
            frontend_block_bytes(object())
