"""Differential harness: object vs columnar backend replayed in lockstep.

The columnar block store rewrites the most correctness-critical layer of
the simulator, so its acceptance bar is *bit-identity*, not "tests pass":
randomized access sequences are replayed against the object and columnar
backends in lockstep, and after **every** access the harness compares

- the stash contents (values *and* insertion order),
- the just-evicted path's bucket contents (slot order included),
- the returned block of interest,

plus full-tree content digests at trace end. Traces are generated from a
seed, every random draw (operation mix, addresses, leaf labels, payloads)
is pre-materialised into the trace, and a failing trace is **shrunk** —
greedy chunk removal that preserves the divergence and trace validity —
so the assertion message carries a minimal deterministic reproducer.

Both columnar eviction kernels are exercised: the scalar slot loop at the
default threshold and the vectorised numpy kernel forced via
``vec_min_merge = 0``. Scheme-level lockstep replays (PLB frontends with
compressed and uncompressed PosMaps, PMMAC on and off, the recursive
baseline, stash-pressure Z=2/Z=3 variants) ride on the same comparisons
through the public Frontend API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.columnar import ColumnarPathOramBackend
from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.errors import BlockNotFoundError, IntegrityViolationError
from repro.storage.block import Block
from repro.storage.columnar import ColumnarTreeStorage
from repro.storage.snapshot import path_records, tree_digest, tree_records
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng

# ---------------------------------------------------------------------------
# Trace model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One pre-materialised backend operation (all randomness inlined)."""

    kind: str  # "read" | "write" | "readrmv" | "append"
    addr: int
    new_leaf: int
    payload_byte: int = 0
    set_mac: bool = False


def generate_trace(
    seed: int,
    steps: int,
    num_addrs: int,
    levels: int,
    with_removal: bool = False,
    mac_fraction: float = 0.0,
) -> List[Step]:
    """Seeded random trace, valid by construction.

    ``with_removal`` mixes in READRMV/APPEND pairs (an address is only
    re-appended after it was removed, mirroring the PLB's usage).
    """
    rng = DeterministicRng(seed)
    removed: set = set()
    out: List[Step] = []
    for _ in range(steps):
        roll = rng.random()
        if with_removal and removed and roll < 0.2:
            addr = sorted(removed)[rng.randrange(len(removed))]
            removed.discard(addr)
            out.append(Step("append", addr, 0))
            continue
        addr = rng.randrange(num_addrs)
        while addr in removed:
            addr = rng.randrange(num_addrs)
        new_leaf = rng.random_leaf(levels)
        if with_removal and roll > 0.85:
            removed.add(addr)
            out.append(Step("readrmv", addr, new_leaf))
        elif roll < 0.5:
            out.append(
                Step(
                    "write",
                    addr,
                    new_leaf,
                    payload_byte=rng.randrange(256),
                    set_mac=rng.random() < mac_fraction,
                )
            )
        else:
            out.append(Step("read", addr, new_leaf))
    return out


def is_valid(trace: List[Step]) -> bool:
    """READRMV only for live addresses, APPEND only for removed ones."""
    removed: set = set()
    for step in trace:
        if step.kind == "append":
            if step.addr not in removed:
                return False
            removed.discard(step.addr)
        else:
            if step.addr in removed:
                return False
            if step.kind == "readrmv":
                removed.add(step.addr)
    return True


# ---------------------------------------------------------------------------
# Lockstep driver
# ---------------------------------------------------------------------------


def build_pair(
    config: OramConfig, seed: int = 7, vec_min_merge: Optional[int] = None
) -> Tuple[PathOramBackend, ColumnarPathOramBackend]:
    """Object and columnar backends over identical configs and RNG seeds."""
    obj = PathOramBackend(config, TreeStorage(config), DeterministicRng(seed))
    col = ColumnarPathOramBackend(
        config, ColumnarTreeStorage(config), DeterministicRng(seed)
    )
    if vec_min_merge is not None:
        col.vec_min_merge = vec_min_merge
    return obj, col


class Divergence(Exception):
    """Raised by the driver at the first observable mismatch."""

    def __init__(self, step_index: int, what: str):
        super().__init__(f"step {step_index}: {what} diverged")
        self.step_index = step_index
        self.what = what


def _block_image(block: Optional[Block]):
    if block is None:
        return None
    return (block.addr, block.leaf, block.data, block.mac)


def run_lockstep(
    config: OramConfig,
    trace: List[Step],
    seed: int = 7,
    vec_min_merge: Optional[int] = None,
    compare_paths: bool = True,
) -> None:
    """Replay a trace against both backends; raise Divergence on mismatch.

    The model PosMap (addr -> current leaf) is shared, so both backends
    receive byte-identical operation streams; removed blocks are held per
    backend and re-appended through each backend's own returned Block,
    exactly as the PLB does.
    """
    obj, col = build_pair(config, seed=seed, vec_min_merge=vec_min_merge)
    posmap: Dict[int, int] = {}
    removed_obj: Dict[int, Block] = {}
    removed_col: Dict[int, Block] = {}
    block_bytes = config.block_bytes
    for index, step in enumerate(trace):
        if step.kind == "append":
            block_obj = removed_obj.pop(step.addr)
            obj.access(Op.APPEND, step.addr, append_block=block_obj)
            col.access(Op.APPEND, step.addr, append_block=removed_col.pop(step.addr))
            # The PosMap still maps the address to the leaf assigned at
            # removal time (exactly the PLB's bookkeeping).
            posmap[step.addr] = block_obj.leaf
        else:
            leaf = posmap.get(step.addr, 0)
            update = None
            if step.kind == "write":
                payload = bytes([step.payload_byte]) * block_bytes
                mac = bytes([step.payload_byte ^ 0x5A]) * 4 if step.set_mac else None

                def update(block, payload=payload, mac=mac):
                    block.data = payload
                    if mac is not None:
                        block.mac = mac

            op = {"read": Op.READ, "write": Op.WRITE, "readrmv": Op.READRMV}[
                step.kind
            ]
            got_obj = obj.access(op, step.addr, leaf, step.new_leaf, update=update)
            got_col = col.access(op, step.addr, leaf, step.new_leaf, update=update)
            posmap[step.addr] = step.new_leaf
            if _block_image(got_obj) != _block_image(got_col):
                raise Divergence(index, "returned block")
            if step.kind == "readrmv":
                posmap.pop(step.addr, None)
                removed_obj[step.addr] = got_obj
                removed_col[step.addr] = got_col
            if compare_paths and path_records(obj.storage, leaf) != path_records(
                col.storage, leaf
            ):
                raise Divergence(index, "evicted path")
        if obj.stash_snapshot() != col.stash_snapshot():
            raise Divergence(index, "stash")
    if tree_records(obj.storage) != tree_records(col.storage):
        raise Divergence(len(trace), "final tree")


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def divergence_of(config: OramConfig, trace: List[Step], **kwargs) -> Optional[str]:
    """The divergence signature of a trace, or None if it passes."""
    try:
        run_lockstep(config, trace, **kwargs)
    except Divergence as exc:
        return exc.what
    return None


def shrink_trace(
    config: OramConfig, trace: List[Step], **kwargs
) -> List[Step]:
    """Greedy chunk removal preserving both validity and the divergence.

    Classic ddmin-style: try dropping chunks of halving sizes; keep any
    candidate that is still a valid trace and still diverges. Terminates
    at chunk size 1, yielding a locally-minimal deterministic reproducer.
    """
    current = list(trace)
    chunk = max(len(current) // 2, 1)
    while chunk >= 1:
        index = 0
        progressed = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and is_valid(candidate) and divergence_of(
                config, candidate, **kwargs
            ):
                current = candidate
                progressed = True
            else:
                index += chunk
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progressed else 0)
    return current


def assert_lockstep(config: OramConfig, trace: List[Step], seed_label, **kwargs):
    """run_lockstep + automatic shrinking into the failure message."""
    try:
        run_lockstep(config, trace, **kwargs)
    except Divergence as exc:
        minimal = shrink_trace(config, trace, **kwargs)
        pytest.fail(
            f"object/columnar divergence ({exc}) for {seed_label}; "
            f"minimal reproducer ({len(minimal)} steps): {minimal!r}"
        )


# ---------------------------------------------------------------------------
# The differential suite
# ---------------------------------------------------------------------------

TINY = OramConfig(num_blocks=64, block_bytes=16)
SMALL = OramConfig(num_blocks=256, block_bytes=32)
PRESSURE_Z2 = OramConfig(num_blocks=256, block_bytes=16, blocks_per_bucket=2)
WIDE_Z16 = OramConfig(num_blocks=512, block_bytes=16, blocks_per_bucket=16)


class TestRandomizedDifferential:
    def test_200_randomized_trace_replays(self):
        """The acceptance sweep: >= 200 seeded lockstep trace replays.

        Seeds rotate over four geometries (incl. a Z=2 stash-pressure
        tree that exercises the slow-path stash rebuild) and over plain
        and removal-heavy operation mixes, with stash and evicted-path
        comparison after every single access.
        """
        configs = (TINY, SMALL, PRESSURE_Z2, WIDE_Z16)
        for seed in range(200):
            config = configs[seed % len(configs)]
            trace = generate_trace(
                seed=1000 + seed,
                steps=40,
                num_addrs=config.num_blocks // 2,
                levels=config.levels,
                with_removal=(seed % 3 == 0),
                mac_fraction=0.3 if seed % 5 == 0 else 0.0,
            )
            assert_lockstep(config, trace, f"seed {1000 + seed}")

    def test_stash_pressure_exercises_slow_path(self):
        """Z=2 long runs must hit leftovers (the wholesale stash rebuild)."""
        trace = generate_trace(
            seed=42, steps=600, num_addrs=128, levels=PRESSURE_Z2.levels
        )
        obj, col = build_pair(PRESSURE_Z2)
        posmap: Dict[int, int] = {}
        for index, step in enumerate(trace):
            leaf = posmap.get(step.addr, 0)
            obj.access(Op.READ, step.addr, leaf, step.new_leaf)
            col.access(Op.READ, step.addr, leaf, step.new_leaf)
            posmap[step.addr] = step.new_leaf
            assert obj.stash_snapshot() == col.stash_snapshot(), f"step {index}"
        # The run only proves something if the stash actually pressured.
        assert obj.stash.occupancy_stats.max > 0
        assert tree_digest(obj.storage) == tree_digest(col.storage)

    def test_vectorised_kernel_matches_object(self):
        """vec_min_merge=0 forces the numpy kernel on every access."""
        pytest.importorskip("numpy")
        for seed in (7, 8, 9):
            for config in (SMALL, PRESSURE_Z2, WIDE_Z16):
                trace = generate_trace(
                    seed=seed,
                    steps=60,
                    num_addrs=config.num_blocks // 2,
                    levels=config.levels,
                    with_removal=True,
                )
                assert_lockstep(
                    config, trace, f"vec seed {seed}", vec_min_merge=0
                )

    def test_vectorised_and_scalar_kernels_identical(self):
        """Columnar-vs-columnar: both kernels produce one history."""
        pytest.importorskip("numpy")
        config = PRESSURE_Z2
        trace = generate_trace(
            seed=77, steps=300, num_addrs=128, levels=config.levels
        )
        scalar = ColumnarPathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(7)
        )
        scalar.vec_min_merge = None
        vector = ColumnarPathOramBackend(
            config, ColumnarTreeStorage(config), DeterministicRng(7)
        )
        vector.vec_min_merge = 0
        posmap: Dict[int, int] = {}
        for step in trace:
            leaf = posmap.get(step.addr, 0)
            scalar.access(Op.READ, step.addr, leaf, step.new_leaf)
            vector.access(Op.READ, step.addr, leaf, step.new_leaf)
            posmap[step.addr] = step.new_leaf
            assert scalar.stash_snapshot() == vector.stash_snapshot()
        assert tree_records(scalar.storage) == tree_records(vector.storage)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_hypothesis_lockstep(self, data):
        """Hypothesis-driven mix (its shrinker complements ours)."""
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["read", "write"]),
                    st.integers(min_value=0, max_value=31),
                    st.integers(min_value=0, max_value=TINY.num_leaves - 1),
                    st.integers(min_value=0, max_value=255),
                ),
                min_size=1,
                max_size=40,
            )
        )
        trace = [
            Step(kind, addr, leaf, payload_byte=byte)
            for kind, addr, leaf, byte in ops
        ]
        run_lockstep(TINY, trace)


class TestErrorPathEquivalence:
    def test_failing_update_restores_identically(self):
        """A mid-access update exception must leave equal, usable state."""
        obj, col = build_pair(SMALL)
        posmap: Dict[int, int] = {}
        trace = generate_trace(seed=5, steps=60, num_addrs=64, levels=SMALL.levels)
        for step in trace[:40]:
            leaf = posmap.get(step.addr, 0)
            obj.access(Op.READ, step.addr, leaf, step.new_leaf)
            col.access(Op.READ, step.addr, leaf, step.new_leaf)
            posmap[step.addr] = step.new_leaf

        def failing(block):
            block.data = b"\xEE" * SMALL.block_bytes  # partial mutation...
            raise IntegrityViolationError("injected")  # ...then failure

        addr = trace[0].addr
        leaf = posmap.get(addr, 0)
        for backend in (obj, col):
            with pytest.raises(IntegrityViolationError):
                backend.access(Op.WRITE, addr, leaf, 3, update=failing)
        # Both backends roll the partial mutation back to the pre-access
        # state identically and stay usable.
        assert obj.stash_snapshot() == col.stash_snapshot()
        assert tree_records(obj.storage) == tree_records(col.storage)
        for step in trace[40:]:
            current = posmap.get(step.addr, 0)
            a = obj.access(Op.READ, step.addr, current, step.new_leaf)
            b = col.access(Op.READ, step.addr, current, step.new_leaf)
            posmap[step.addr] = step.new_leaf
            assert _block_image(a) == _block_image(b)
        assert tree_digest(obj.storage) == tree_digest(col.storage)

    def test_missing_block_strict_raises_identically(self):
        config = SMALL
        obj = PathOramBackend(
            config, TreeStorage(config), DeterministicRng(1), allow_missing=False
        )
        col = ColumnarPathOramBackend(
            config,
            ColumnarTreeStorage(config),
            DeterministicRng(1),
            allow_missing=False,
        )
        for backend in (obj, col):
            with pytest.raises(BlockNotFoundError):
                backend.access(Op.READ, 9, 0, 1)
        assert obj.stash_snapshot() == col.stash_snapshot() == ()
        assert tree_records(obj.storage) == tree_records(col.storage)

    def test_duplicate_append_raises_identically(self):
        obj, col = build_pair(SMALL)
        block = Block(5, 1, bytes(SMALL.block_bytes), None)
        for backend in (obj, col):
            backend.access(Op.APPEND, 5, append_block=Block(5, 1, bytes(32), None))
            with pytest.raises(ValueError, match="duplicate block"):
                backend.access(Op.APPEND, 5, append_block=block.copy())
        assert obj.stash_snapshot() == col.stash_snapshot()

    def test_out_of_range_leaf_raises_identically(self):
        """A corrupt leaf label fails the same way on the scalar kernels."""
        obj, col = build_pair(SMALL)
        for backend in (obj, col):
            backend.access(
                Op.APPEND,
                3,
                append_block=Block(3, SMALL.num_leaves * 2, bytes(32), None),
            )
            with pytest.raises(ValueError, match="out of range"):
                backend.access(Op.READ, 8, 0, 1)
        assert obj.stash_snapshot() == col.stash_snapshot()
        assert tree_records(obj.storage) == tree_records(col.storage)


class TestShrinker:
    """The harness's own reducer must produce minimal reproducers."""

    class _SabotagedBackend(ColumnarPathOramBackend):
        """Diverges once a marked address has been written."""

        POISON = 13

        def access(self, op, addr, leaf=0, new_leaf=0, update=None, append_block=None):
            result = super().access(
                op, addr, leaf, new_leaf, update=update, append_block=append_block
            )
            if op is Op.WRITE and addr == self.POISON and result is not None:
                result.data = b"\x00" * len(result.data)  # corrupt the echo
            return result

    def test_shrinker_isolates_the_poisoned_step(self):
        # Build a trace where exactly one WRITE hits the poisoned address.
        trace = generate_trace(seed=3, steps=50, num_addrs=32, levels=TINY.levels)
        trace = [s for s in trace if s.addr != self._SabotagedBackend.POISON]
        trace.insert(
            25, Step("write", self._SabotagedBackend.POISON, 1, payload_byte=7)
        )

        def run_sabotaged(config, candidate, **kwargs):
            obj = PathOramBackend(
                config, TreeStorage(config), DeterministicRng(7)
            )
            bad = self._SabotagedBackend(
                config, ColumnarTreeStorage(config), DeterministicRng(7)
            )
            posmap: Dict[int, int] = {}
            for index, step in enumerate(candidate):
                leaf = posmap.get(step.addr, 0)
                update = None
                if step.kind == "write":
                    payload = bytes([step.payload_byte]) * config.block_bytes

                    def update(block, payload=payload):
                        block.data = payload

                op = {"read": Op.READ, "write": Op.WRITE}[step.kind]
                a = obj.access(op, step.addr, leaf, step.new_leaf, update=update)
                b = bad.access(op, step.addr, leaf, step.new_leaf, update=update)
                posmap[step.addr] = step.new_leaf
                if _block_image(a) != _block_image(b):
                    return index
            return None

        assert run_sabotaged(TINY, trace) is not None

        # Shrink with the sabotaged runner plugged into the reducer loop.
        current = list(trace)
        chunk = max(len(current) // 2, 1)
        while chunk >= 1:
            index = 0
            while index < len(current):
                candidate = current[:index] + current[index + chunk :]
                if candidate and is_valid(candidate) and run_sabotaged(
                    TINY, candidate
                ) is not None:
                    current = candidate
                else:
                    index += chunk
            if chunk == 1:
                break
            chunk //= 2
        assert len(current) == 1
        assert current[0].addr == self._SabotagedBackend.POISON


# ---------------------------------------------------------------------------
# Scheme-level lockstep (through the public Frontend API)
# ---------------------------------------------------------------------------


SCHEME_MATRIX = [
    ("P_X16", {}),
    ("PC_X32", {}),
    ("PI_X8", {}),
    ("PIC_X32", {}),
    ("PC_X32", {"blocks_per_bucket": 3}),  # stash-pressure variant
    ("PIC_X32", {"plb_capacity_bytes": 1024}),  # eviction-heavy PLB
    ("R_X8", {}),
    ("phantom_4kb", {"num_blocks": 2**6, "block_bytes": 512}),
]


class TestSchemeLockstep:
    @pytest.mark.parametrize("scheme,overrides", SCHEME_MATRIX)
    def test_frontend_access_stream_identical(self, scheme, overrides):
        from repro.presets import build_frontend

        rng = DeterministicRng(31)
        kwargs = dict(num_blocks=2**10)
        kwargs.update(overrides)
        object_frontend = build_frontend(
            scheme, rng=DeterministicRng(7), storage="object", **kwargs
        )
        columnar_frontend = build_frontend(
            scheme, rng=DeterministicRng(7), storage="columnar", **kwargs
        )
        num_addrs = kwargs["num_blocks"]
        block_bytes = kwargs.get("block_bytes", 64)
        for step in range(250):
            addr = rng.randrange(num_addrs)
            if rng.random() < 0.3:
                payload = bytes([step % 256]) * block_bytes
                a = object_frontend.write(addr, payload)
                b = columnar_frontend.write(addr, payload)
            else:
                a = object_frontend.read(addr)
                b = columnar_frontend.read(addr)
                assert a == b, f"step {step}: data diverged"
        object_backends = getattr(
            object_frontend, "backends", None
        ) or [object_frontend.backend]
        columnar_backends = getattr(
            columnar_frontend, "backends", None
        ) or [columnar_frontend.backend]
        for ob, cb in zip(object_backends, columnar_backends):
            assert ob.stash_snapshot() == cb.stash_snapshot()
            assert tree_digest(ob.storage) == tree_digest(cb.storage)
            assert ob.stash.occupancy_stats.max == cb.stash.occupancy_stats.max
