"""PMMAC integrity verification against an active adversary (§6).

These tests run the PIC/PI frontends over *real* encrypted storage and
mount the §2 threat-model attacks with the Tamperer: data corruption,
block deletion, and whole-tree replay. Every attack must be detected the
moment the affected block becomes the block of interest.
"""

import pytest

from repro.adversary.tamper import Tamperer
from repro.backend.ops import Op
from repro.crypto.suite import CryptoSuite
from repro.errors import IntegrityViolationError
from repro.frontend.unified import PlbFrontend
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme
from repro.utils.rng import DeterministicRng


def make_frontend(posmap_format="flat", seed=19, num_blocks=2**8):
    crypto = CryptoSuite.fast(b"pmmac-test")

    def storage_factory(config, observer):
        return EncryptedTreeStorage(
            config, crypto.pad, EncryptionScheme.GLOBAL_SEED
        )

    frontend = PlbFrontend(
        num_blocks=num_blocks,
        posmap_format=posmap_format,
        pmmac=True,
        onchip_entries=2**3,
        plb_capacity_bytes=1024,
        crypto=crypto,
        rng=DeterministicRng(seed),
        storage_factory=storage_factory,
    )
    return frontend


def find_block_bucket(storage: EncryptedTreeStorage, addr: int):
    """(bucket_index, slot) of a block in untrusted memory, or None."""
    for index in range(storage.config.num_buckets):
        image = storage._images[index]
        if image is None:
            continue
        bucket = storage._decrypt_bucket_image(index, image)
        for slot, block in enumerate(bucket.blocks):
            if block.addr == addr:
                return index, slot
    return None


@pytest.mark.parametrize("posmap_format", ["flat", "compressed"])
class TestTamperDetection:
    def test_honest_operation_verifies(self, posmap_format):
        frontend = make_frontend(posmap_format)
        rng = DeterministicRng(1)
        shadow = {}
        for step in range(200):
            addr = rng.randrange(2**8)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * 64
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(64))
        assert frontend.stats.mac_checks > 0

    def test_data_corruption_detected(self, posmap_format):
        frontend = make_frontend(posmap_format)
        frontend.write(42, b"\xAA" * 64)
        # Push the block out of the stash into the tree by random traffic.
        rng = DeterministicRng(2)
        for _ in range(50):
            frontend.read(rng.randrange(2**8))
        storage = frontend.backend.storage
        location = find_block_bucket(storage, 42)
        if location is None:
            pytest.skip("block still in stash after traffic (rare)")
        index, slot = location
        tamperer = Tamperer(storage)
        # Flip a bit inside the slot's data region (slot header is 17 B).
        slot_bytes = storage._slot_bytes()
        tamperer.corrupt_body(index, slot * slot_bytes + 17 + 5)
        with pytest.raises(IntegrityViolationError):
            for _ in range(3):
                frontend.read(42)

    def test_whole_tree_replay_detected(self, posmap_format):
        """Freshness: rolling the entire DRAM back must be caught."""
        frontend = make_frontend(posmap_format)
        frontend.write(7, b"\x01" * 64)
        rng = DeterministicRng(3)
        for _ in range(30):
            frontend.read(rng.randrange(2**8))
        tamperer = Tamperer(frontend.backend.storage)
        tamperer.snapshot()
        frontend.write(7, b"\x02" * 64)
        for _ in range(30):
            frontend.read(rng.randrange(2**8))
        tamperer.replay_all()
        with pytest.raises(IntegrityViolationError):
            for _ in range(60):
                frontend.read(7)

    def test_block_deletion_detected(self, posmap_format):
        """Erasing the block of interest cannot masquerade as fresh."""
        frontend = make_frontend(posmap_format)
        frontend.write(9, b"\x0F" * 64)
        rng = DeterministicRng(4)
        for _ in range(50):
            frontend.read(rng.randrange(2**8))
        storage = frontend.backend.storage
        location = find_block_bucket(storage, 9)
        if location is None:
            pytest.skip("block still in stash after traffic (rare)")
        index, slot = location
        # Zero the slot's valid flag by replacing the bucket with an
        # empty image snapshot from before any writes.
        tamperer = Tamperer(storage)
        slot_bytes = storage._slot_bytes()
        tamperer.corrupt_body(index, slot * slot_bytes)  # flip 'valid' bit
        with pytest.raises(IntegrityViolationError):
            for _ in range(3):
                frontend.read(9)


class TestUntamperedSurvivesTamperElsewhere:
    def test_other_block_tamper_not_detected_until_accessed(self):
        """Authenticate-then-encrypt caveat (§6.5.2): tampering block B is
        only caught when B itself is requested."""
        frontend = make_frontend("flat")
        frontend.write(10, b"\x10" * 64)
        frontend.write(11, b"\x11" * 64)
        rng = DeterministicRng(5)
        for _ in range(50):
            frontend.read(rng.randrange(2**8))
        storage = frontend.backend.storage
        loc = find_block_bucket(storage, 11)
        if loc is None:
            pytest.skip("block still in stash (rare)")
        index, slot = loc
        Tamperer(storage).corrupt_body(
            index, slot * storage._slot_bytes() + 17 + 1
        )
        # Accessing *other* blocks does not raise...
        for addr in (10, 20, 30):
            frontend.read(addr)
        # ...but accessing the victim does.
        with pytest.raises(IntegrityViolationError):
            for _ in range(3):
                frontend.read(11)


class TestCounterProperties:
    def test_counters_never_repeat(self):
        """Observation 3: each (a, c) pair the Frontend MACs is unique."""
        crypto = CryptoSuite.fast(b"ctr-test")
        seen = set()
        original = crypto.mac.block_tag

        def spy(count, address, data):
            assert (address, count) not in seen, "repeated (a, c) pair"
            seen.add((address, count))
            return original(count, address, data)

        crypto.mac.block_tag = spy
        frontend = PlbFrontend(
            num_blocks=2**8,
            posmap_format="compressed",
            compressed_beta=3,  # force group remaps into the window
            pmmac=True,
            onchip_entries=2**3,
            plb_capacity_bytes=1024,
            crypto=crypto,
            rng=DeterministicRng(6),
        )
        rng = DeterministicRng(7)
        for _ in range(150):
            addr = rng.randrange(2**8)
            if rng.random() < 0.5:
                frontend.write(addr, bytes(64))
            else:
                frontend.read(addr)
        for _ in range(40):  # hammer one block to force IC rollovers
            frontend.read(5)
        assert frontend.stats.group_remaps > 0  # rollovers happened
        assert len(seen) > 0
