"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    clear_bit,
    common_prefix_len,
    extract_bits,
    is_power_of_two,
    log2_exact,
    reverse_bits,
    set_bit,
    bit_is_set,
)


class TestPowerOfTwo:
    def test_powers_are_detected(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers_rejected(self):
        for x in (0, 3, 5, 6, 7, 9, 12, 100, -2, -8):
            assert not is_power_of_two(x)

    def test_log2_exact_matches(self):
        for k in range(20):
            assert log2_exact(1 << k) == k

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    def test_log2_exact_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)


class TestBitAccess:
    def test_test_bit(self):
        assert bit_is_set(0b1010, 1)
        assert not bit_is_set(0b1010, 0)
        assert bit_is_set(0b1010, 3)

    def test_set_bit(self):
        assert set_bit(0, 3) == 8
        assert set_bit(8, 3) == 8

    def test_clear_bit(self):
        assert clear_bit(0b1111, 2) == 0b1011
        assert clear_bit(0, 5) == 0

    def test_extract_bits(self):
        assert extract_bits(0b110110, 1, 3) == 0b011
        assert extract_bits(0xFF00, 8, 8) == 0xFF
        assert extract_bits(0xFF00, 0, 8) == 0

    def test_extract_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            extract_bits(5, -1, 2)

    def test_reverse_bits(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b110, 3) == 0b011
        assert reverse_bits(0, 8) == 0

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_reverse_is_involution(self, x):
        assert reverse_bits(reverse_bits(x, 16), 16) == x


class TestCommonPrefix:
    def test_identical_leaves_share_full_prefix(self):
        assert common_prefix_len(0b1010, 0b1010, 4) == 4

    def test_differing_msb_shares_nothing(self):
        assert common_prefix_len(0b1000, 0b0000, 4) == 0

    def test_partial_prefix(self):
        assert common_prefix_len(0b1010, 0b1011, 4) == 3
        assert common_prefix_len(0b1010, 0b1000, 4) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            common_prefix_len(16, 0, 4)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_symmetric(self, a, b):
        assert common_prefix_len(a, b, 8) == common_prefix_len(b, a, 8)

    @given(st.integers(min_value=0, max_value=255))
    def test_self_prefix_is_width(self, a):
        assert common_prefix_len(a, a, 8) == 8

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
    )
    def test_prefix_semantics(self, a, b):
        """A prefix of length p means the top p bits agree and bit p+1 differs."""
        p = common_prefix_len(a, b, 10)
        if p < 10:
            assert (a >> (10 - p)) == (b >> (10 - p))
            assert (a >> (10 - p - 1)) != (b >> (10 - p - 1))
