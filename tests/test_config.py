"""OramConfig geometry and derived sizing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import OramConfig


class TestGeometry:
    def test_default_levels_give_half_utilisation(self):
        """L = log2(N) - 1 means 2^L = N/2 leaves (50% DRAM utilisation)."""
        cfg = OramConfig(num_blocks=1024)
        assert cfg.levels == 9
        assert cfg.num_leaves == 512

    def test_bucket_count(self):
        cfg = OramConfig(num_blocks=16)
        assert cfg.num_buckets == 2 ** (cfg.levels + 1) - 1

    def test_explicit_levels_override(self):
        cfg = OramConfig(num_blocks=1024, levels=12)
        assert cfg.levels == 12
        assert cfg.num_leaves == 4096

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            OramConfig(num_blocks=100)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            OramConfig(num_blocks=16, block_bytes=0)
        with pytest.raises(ValueError):
            OramConfig(num_blocks=16, blocks_per_bucket=0)


class TestByteSizing:
    def test_table1_bucket_is_320_bytes(self):
        """Z=4, 64 B blocks, 4+4 B metadata, 8 B seed -> 296 -> 320 B."""
        cfg = OramConfig(num_blocks=2**26, block_bytes=64)
        assert cfg.bucket_payload_bytes == 4 * 72 + 8
        assert cfg.bucket_bytes == 320

    def test_bucket_padded_to_64_byte_multiple(self):
        cfg = OramConfig(num_blocks=16, block_bytes=50)
        assert cfg.bucket_bytes % 64 == 0
        assert cfg.bucket_bytes >= cfg.bucket_payload_bytes

    def test_mac_bytes_grow_bucket(self):
        plain = OramConfig(num_blocks=16, block_bytes=64)
        mac = plain.with_mac(14)
        assert mac.slot_bytes == plain.slot_bytes + 14
        assert mac.bucket_bytes >= plain.bucket_bytes

    def test_with_mac_preserves_geometry(self):
        plain = OramConfig(num_blocks=64, block_bytes=64, levels=8)
        mac = plain.with_mac(10)
        assert mac.levels == plain.levels
        assert mac.num_blocks == plain.num_blocks

    def test_path_bytes(self):
        cfg = OramConfig(num_blocks=16, block_bytes=64)
        assert cfg.path_bytes == (cfg.levels + 1) * cfg.bucket_bytes

    def test_capacity(self):
        cfg = OramConfig(num_blocks=2**20, block_bytes=64)
        assert cfg.capacity_bytes == 64 * 2**20

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=1, max_value=512))
    def test_padding_never_shrinks(self, log_blocks, block_bytes):
        cfg = OramConfig(num_blocks=1 << log_blocks, block_bytes=block_bytes)
        assert cfg.bucket_bytes >= cfg.bucket_payload_bytes
        assert cfg.bucket_bytes - cfg.bucket_payload_bytes < 64
