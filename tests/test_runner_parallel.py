"""Parallel ``run_suite`` equivalence and cross-process determinism.

The paper's methodology requires every scheme to replay byte-identical
miss streams; these tests pin down the two properties that guarantee it
at scale: trace seeding independent of ``PYTHONHASHSEED`` (subprocess
based), and worker-pool fan-out that is bitwise identical to the serial
path.
"""

import json
import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

import repro
from repro.sim.runner import (
    SimulationRunner,
    default_workers,
    stable_trace_salt,
)

SCHEMES = ["R_X8", "PC_X32"]
BENCHES = ["gob", "hmmer"]
MISSES = 200

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)

#: Runs one small experiment and prints a JSON fingerprint of the trace
#: and the result; executed under different PYTHONHASHSEED values.
_FINGERPRINT_SCRIPT = """
import hashlib, json
from repro.sim.runner import SimulationRunner

runner = SimulationRunner(misses_per_benchmark=200, cache_dir=None, result_cache_dir=None)
result = runner.run_one("PC_X32", "gob")
trace = runner.trace("gob")
print(json.dumps({
    "cycles": result.cycles,
    "tree_accesses": result.tree_accesses,
    "events": len(trace.events),
    "trace_sha": hashlib.sha256(trace.to_bytes(compress=False)).hexdigest(),
}))
"""


def _fingerprint_with_hashseed(hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return json.loads(out.stdout)


class TestDeterministicSeeding:
    def test_salt_is_process_independent(self):
        # Locked literals: CRC32-based, never the salted builtin hash().
        assert stable_trace_salt("gob") == zlib.crc32(b"gob") & 0xFFFF
        assert stable_trace_salt("gob") == 29611
        assert stable_trace_salt("mcf") != stable_trace_salt("gob")

    @pytest.mark.slow
    def test_identical_across_hashseed_processes(self):
        """Traces and SimResults must not depend on PYTHONHASHSEED."""
        a = _fingerprint_with_hashseed("0")
        b = _fingerprint_with_hashseed("31337")
        assert a == b


class TestParallelSuite:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("suite-cache")

    @pytest.fixture(scope="class")
    def serial(self, cache_dir):
        # result_cache_dir=None throughout this class: the point is to
        # prove the parallel path *recomputes* bitwise-identical results,
        # not that the result cache can replay them.
        runner = SimulationRunner(
            misses_per_benchmark=MISSES, cache_dir=cache_dir, result_cache_dir=None
        )
        return runner.run_suite(SCHEMES, BENCHES)

    def test_parallel_bitwise_matches_serial(self, cache_dir, serial):
        runner = SimulationRunner(
            misses_per_benchmark=MISSES, cache_dir=cache_dir, result_cache_dir=None
        )
        parallel = runner.run_suite(SCHEMES, BENCHES, workers=3)
        # SimResult is a dataclass: == is exact field (float-bit) equality.
        assert parallel == serial

    def test_parallel_preserves_layout(self, cache_dir, serial):
        runner = SimulationRunner(
            misses_per_benchmark=MISSES, cache_dir=cache_dir, result_cache_dir=None
        )
        parallel = runner.run_suite(SCHEMES, BENCHES, workers=2)
        assert list(parallel) == SCHEMES
        for scheme in SCHEMES:
            assert list(parallel[scheme]) == BENCHES

    def test_parallel_with_overrides_matches_serial(self, cache_dir):
        runner = SimulationRunner(
            misses_per_benchmark=MISSES, cache_dir=cache_dir, result_cache_dir=None
        )
        serial = runner.run_suite(["PC_X32"], BENCHES, plb_capacity_bytes=8 * 1024)
        parallel = runner.run_suite(
            ["PC_X32"], BENCHES, workers=2, plb_capacity_bytes=8 * 1024
        )
        assert parallel == serial

    def test_parallel_without_disk_cache(self, serial):
        runner = SimulationRunner(
            misses_per_benchmark=MISSES, cache_dir=None, result_cache_dir=None
        )
        parallel = runner.run_suite(SCHEMES, BENCHES, workers=2)
        assert parallel == serial

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert default_workers() == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() == 1


class TestBuildOverrides:
    """`plb_capacity_bytes` must be dropped, not crash, for non-PLB schemes."""

    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        return SimulationRunner(
            misses_per_benchmark=MISSES,
            cache_dir=tmp_path_factory.mktemp("build-cache"),
        )

    def test_r_x8_accepts_plb_capacity_override(self, runner):
        frontend = runner.build("R_X8", "gob", plb_capacity_bytes=16 * 1024)
        assert frontend is not None  # previously raised TypeError

    def test_plb_scheme_uses_plb_capacity_override(self, runner):
        frontend = runner.build("PC_X32", "gob", plb_capacity_bytes=16 * 1024)
        assert frontend.plb.capacity_bytes == 16 * 1024

    def test_suite_wide_override_spans_both_frontend_kinds(self, runner):
        results = runner.run_suite(
            ["R_X8", "PC_X32"], ["gob"], plb_capacity_bytes=32 * 1024
        )
        assert results["R_X8"]["gob"].oram_accesses > 0
        assert results["PC_X32"]["gob"].oram_accesses > 0
