"""Cross-module integration: frontends over encrypted storage, observers
through the full stack, the sub-block scheme's bandwidth position, and
end-to-end determinism."""

import pytest

from repro.adversary.observer import TraceObserver
from repro.backend.ops import Op
from repro.crypto.suite import CryptoSuite
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.subblock import SubBlockFrontend
from repro.frontend.unified import PlbFrontend
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme
from repro.utils.rng import DeterministicRng


class TestPlbOverEncryptedStorage:
    """The PLB frontend must work unchanged over byte-accurate encrypted
    memory, with or without PMMAC (the Backend-opacity claim)."""

    @pytest.mark.parametrize("pmmac", [False, True])
    def test_shadow_consistency(self, pmmac):
        crypto = CryptoSuite.fast(b"integration")

        def factory(config, observer):
            return EncryptedTreeStorage(
                config, crypto.pad, EncryptionScheme.GLOBAL_SEED
            )

        frontend = PlbFrontend(
            num_blocks=2**8,
            posmap_format="compressed",
            pmmac=pmmac,
            onchip_entries=2**3,
            plb_capacity_bytes=1024,
            crypto=crypto,
            rng=DeterministicRng(1),
            storage_factory=factory,
        )
        rng = DeterministicRng(2)
        shadow = {}
        for step in range(150):
            addr = rng.randrange(2**8)
            if rng.random() < 0.5:
                data = bytes([step % 256]) * 64
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(64))

    def test_ciphertext_fresh_across_schemes(self):
        """Every path write-back re-encrypts: images change even when the
        plaintext does not."""
        crypto = CryptoSuite.fast(b"fresh")

        def factory(config, observer):
            return EncryptedTreeStorage(
                config, crypto.pad, EncryptionScheme.GLOBAL_SEED
            )

        frontend = PlbFrontend(
            num_blocks=2**7,
            onchip_entries=2**3,
            plb_capacity_bytes=1024,
            crypto=crypto,
            rng=DeterministicRng(3),
            storage_factory=factory,
        )
        frontend.read(0)
        root_before = frontend.backend.storage.raw_image(0)
        frontend.read(0)
        assert frontend.backend.storage.raw_image(0) != root_before


class TestObserverThroughFullStack:
    def test_unified_frontend_emits_paired_events(self):
        observer = TraceObserver()
        frontend = PlbFrontend(
            num_blocks=2**8,
            onchip_entries=2**3,
            plb_capacity_bytes=1024,
            rng=DeterministicRng(4),
            observer=observer,
        )
        for addr in range(20):
            frontend.read(addr)
        reads = [e for e in observer.events if e.kind == "read"]
        writes = [e for e in observer.events if e.kind == "write"]
        assert len(reads) == len(writes) == frontend.stats.tree_accesses
        # Read/write pairs target the same leaf (path write-back).
        for r, w in zip(reads, writes):
            assert r.leaf == w.leaf

    def test_recursive_trees_interleave_in_fixed_order(self):
        observer = TraceObserver()
        frontend = RecursiveFrontend(
            num_blocks=2**9,
            onchip_entries=2**3,
            rng=DeterministicRng(5),
            observer=observer,
        )
        for addr in range(10):
            frontend.read(addr)
        sequence = observer.tree_sequence()
        h = frontend.num_levels
        # Every access walks top PosMap ... ORam1, then data (tree 0).
        for i in range(0, len(sequence), h):
            chunk = sequence[i : i + h]
            assert chunk == sorted(chunk, reverse=True)
            assert chunk[-1] == 0


class TestSubBlockVsRecursive:
    """§5.4's concrete wins at finite scale are structural: the X'=32
    compressed fan-out needs fewer recursion levels than the X=8
    baseline at an equal on-chip budget, and splitting keeps the *data*
    byte volume of big blocks comparable while the asymptotic PosMap
    term shrinks (the formula itself is checked in test_analytic)."""

    def test_compression_shrinks_recursion_depth(self):
        num_blocks = 2**20
        sub = SubBlockFrontend(
            num_blocks=num_blocks,
            data_block_bytes=512,
            posmap_block_bytes=64,
            onchip_entries=2**6,
            rng=DeterministicRng(6),
        )
        rec = RecursiveFrontend(
            num_blocks=num_blocks,
            data_block_bytes=512,
            posmap_block_bytes=32,
            onchip_entries=2**6,
            rng=DeterministicRng(6),
        )
        assert sub.num_levels < rec.num_levels

    def test_data_byte_volume_comparable(self):
        """Splitting B into s pieces of Bp moves ~the same data bytes as
        one B-sized path access (slot metadata aside)."""
        num_blocks, big_b = 2**8, 512
        sub = SubBlockFrontend(
            num_blocks=num_blocks,
            data_block_bytes=big_b,
            posmap_block_bytes=64,
            onchip_entries=2**3,
            rng=DeterministicRng(6),
        )
        rec = RecursiveFrontend(
            num_blocks=num_blocks,
            data_block_bytes=big_b,
            posmap_block_bytes=32,
            onchip_entries=2**3,
            rng=DeterministicRng(6),
        )
        rng = DeterministicRng(7)
        for _ in range(40):
            addr = rng.randrange(num_blocks)
            sub.read(addr)
            rec.read(addr)
        ratio = sub.data_bytes_moved / rec.data_bytes_moved
        assert 0.5 < ratio < 2.5


class TestDeterminism:
    def test_full_stack_bitwise_reproducible(self):
        """Same seeds end-to-end -> identical stats, bytes, and traces."""
        def run():
            observer = TraceObserver()
            frontend = PlbFrontend(
                num_blocks=2**8,
                posmap_format="compressed",
                pmmac=True,
                onchip_entries=2**3,
                plb_capacity_bytes=1024,
                crypto=CryptoSuite.fast(b"det"),
                rng=DeterministicRng(8),
                observer=observer,
            )
            rng = DeterministicRng(9)
            for step in range(120):
                addr = rng.randrange(2**8)
                if rng.random() < 0.5:
                    frontend.write(addr, bytes([step % 256]) * 64)
                else:
                    frontend.read(addr)
            return (
                frontend.stats.tree_accesses,
                frontend.stats.plb_hits,
                frontend.total_bytes_moved,
                [e.leaf for e in observer.events],
            )

        assert run() == run()
