"""Property-based proof: shard-breaker failovers never reorder admission.

For *any* sequence of shard-breaker open/close events — arbitrary shards
tripped at arbitrary epochs for arbitrary durations, including
overlapping and repeated trips — parking admitted requests in the shard
backlog and draining them to the front of the first post-recovery epoch
queue must preserve the exact admission order. The witness is the
per-shard access digest (a SHA-256 fold of the execution-order access
sequence): it must be bit-identical to the never-tripped golden run,
along with every simulated cycle count.

Event-stream tenants keep each example to a few milliseconds of ORAM
work; the golden is computed once per test, so Hypothesis only pays for
the chaotic runs.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import injected, parse
from repro.serve import OramService, ServeConfig, TenantSpec
from repro.sim.runner import SimulationRunner

SHARDS = 2


def _tenants():
    # Two deterministic event streams with distinct access shapes; small
    # regions keep the shards tiny.
    return [
        TenantSpec(
            name="alpha",
            events=tuple((i * 7 % 40, i % 3 == 0) for i in range(48)),
            region_blocks=64,
        ),
        TenantSpec(
            name="beta",
            events=tuple(((i * i + 3) % 40, i % 4 == 0) for i in range(48)),
            region_blocks=64,
        ),
    ]


def _service() -> OramService:
    # queue_capacity is sized so parked backlogs never fill a queue:
    # backpressure deferrals legitimately change the cross-tenant
    # admission interleaving, and this property isolates the breaker's
    # park/drain path, which must not.
    return OramService(
        _tenants(),
        runner=SimulationRunner(misses_per_benchmark=100, seed=23),
        config=ServeConfig(
            scheme="P_X16", shards=SHARDS, burst=3, queue_capacity=256
        ),
    )


def _image(service: OramService):
    return (
        [
            (s.index, s.requests, s.busy_cycles, s.access_digest)
            for s in service.shard_stats
        ],
        [(t.completed, t.cycles) for t in service.tenant_stats],
    )


# Each trip: (shard index, epoch the stall fires, epochs held open).
# unique_by (shard, epoch) keeps one injector per match event, so the
# per-injector hit counters stay unambiguous.
TRIPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SHARDS - 1),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: (t[0], t[1]),
)

GOLDEN = {}


def _golden_image():
    if "image" not in GOLDEN:
        GOLDEN["image"] = _image(_service().run("serial"))
    return GOLDEN["image"]


class TestBreakerDrainOrder:
    @settings(max_examples=10, deadline=None)
    @given(trips=TRIPS)
    def test_arbitrary_trip_schedules_preserve_digests(self, trips):
        golden = _golden_image()
        plan_text = ";".join(
            f"serve.shard.stall@{shard}#{epoch}|epochs={hold}"
            for shard, epoch, hold in trips
        )
        chaotic = _service()
        with injected(parse(plan_text)):
            chaotic.run("serial")
        assert _image(chaotic) == golden
        assert all(not s.backlog for s in chaotic.shards)

    @settings(max_examples=6, deadline=None)
    @given(trips=TRIPS)
    def test_drivers_agree_under_arbitrary_trips(self, trips):
        plan_text = ";".join(
            f"serve.shard.stall@{shard}#{epoch}|epochs={hold}"
            for shard, epoch, hold in trips
        )
        serial = _service()
        with injected(parse(plan_text)):
            serial.run("serial")
        concurrent = _service()
        with injected(parse(plan_text)):
            concurrent.run("async")
        assert _image(serial) == _image(concurrent)
        assert serial.epochs == concurrent.epochs
