"""Hypothesis property tests over the PLB frontend (all variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.unified import PlbFrontend
from repro.utils.rng import DeterministicRng

STEP = st.tuples(
    st.integers(min_value=0, max_value=255),
    st.booleans(),
    st.integers(min_value=0, max_value=255),
)

VARIANTS = [
    ("uncompressed", False),
    ("flat", True),
    ("compressed", True),
]


def build(posmap_format, pmmac, seed, beta=14):
    return PlbFrontend(
        num_blocks=256,
        posmap_format=posmap_format,
        pmmac=pmmac,
        compressed_beta=beta,
        onchip_entries=8,
        plb_capacity_bytes=512,
        rng=DeterministicRng(seed),
    )


@pytest.mark.parametrize("posmap_format,pmmac", VARIANTS)
@settings(max_examples=15, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=80), seed=st.integers(0, 1000))
def test_frontend_is_a_ram(posmap_format, pmmac, steps, seed):
    """Any op sequence behaves like an ideal RAM under every variant."""
    frontend = build(posmap_format, pmmac, seed)
    shadow = {}
    for addr, is_write, byte in steps:
        if is_write:
            payload = bytes([byte]) * 64
            frontend.write(addr, payload)
            shadow[addr] = payload
        else:
            assert frontend.read(addr) == shadow.get(addr, bytes(64))


@settings(max_examples=15, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=60), seed=st.integers(0, 1000))
def test_group_remaps_never_corrupt(steps, seed):
    """Tiny beta forces frequent group remaps mid-sequence; data must
    survive arbitrarily interleaved remap storms."""
    frontend = build("compressed", True, seed, beta=2)
    shadow = {}
    for addr, is_write, byte in steps:
        addr %= 64  # concentrate traffic to trigger rollovers
        if is_write:
            payload = bytes([byte]) * 64
            frontend.write(addr, payload)
            shadow[addr] = payload
        else:
            assert frontend.read(addr) == shadow.get(addr, bytes(64))


@settings(max_examples=10, deadline=None)
@given(addrs=st.lists(st.integers(0, 255), min_size=10, max_size=80))
def test_stash_plus_tree_occupancy_conserved(addrs):
    """Blocks are neither duplicated nor lost: stash + tree + PLB counts
    every touched block exactly once."""
    frontend = build("uncompressed", False, 3)
    for addr in addrs:
        frontend.read(addr)
    tree = frontend.backend.storage.occupancy()
    stash = frontend.backend.stash_occupancy()
    plb = len(frontend.plb)
    touched_data = len(set(addrs))
    posmap_blocks = frontend.stats.plb_refills - frontend.stats.plb_evictions
    # Data blocks touched once live in tree/stash; PosMap blocks that were
    # materialised live in tree/stash/PLB.
    total = tree + stash + plb
    assert total >= touched_data
    # Nothing is ever duplicated:
    seen = set()
    for bucket in frontend.backend.storage._buckets:
        if bucket is None:
            continue
        for block in bucket:
            assert block.addr not in seen
            seen.add(block.addr)
    for block in frontend.backend.stash:
        assert block.addr not in seen
        seen.add(block.addr)
    for entry in frontend.plb.entries():
        assert entry.tagged_addr not in seen
        seen.add(entry.tagged_addr)


@settings(max_examples=10, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 255), min_size=5, max_size=50),
    seed=st.integers(0, 100),
)
def test_deterministic_replay(addrs, seed):
    """Identical seeds and op sequences give identical observable state."""
    runs = []
    for _ in range(2):
        frontend = build("compressed", False, seed)
        outputs = [frontend.read(a) for a in addrs]
        runs.append(
            (
                outputs,
                frontend.stats.plb_hits,
                frontend.stats.tree_accesses,
                frontend.backend.stash_occupancy(),
            )
        )
    assert runs[0] == runs[1]
