"""Timing model, replay engine and runner integration."""

import pytest

from repro.config import FrontendTimings, OramConfig, ProcessorConfig
from repro.dram.config import DramConfig
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.metrics import SimResult, format_table, slowdown_table
from repro.sim.runner import SimulationRunner
from repro.sim.system import base_cycles, insecure_cycles, replay_trace
from repro.sim.timing import OramTimingModel


def tiny_trace(n_events=20, name="t"):
    trace = MissTrace(name=name, instructions=10_000, mem_refs=3000, l1_hits=2800, l2_hits=150)
    trace.events = [MissEvent(i * 7 % 256, i % 3 == 0) for i in range(n_events)]
    return trace


class TestTimingModel:
    def test_latency_composition(self):
        model = OramTimingModel(tree_latency_cycles=1000.0)
        t = FrontendTimings()
        assert model.miss_latency(1) == t.frontend_latency + 1000 + t.backend_latency
        assert model.miss_latency(3) == t.frontend_latency + 3 * (1000 + t.backend_latency)

    def test_pmmac_adds_sha3(self):
        base = OramTimingModel(1000.0, pmmac=False).miss_latency(1)
        with_mac = OramTimingModel(1000.0, pmmac=True).miss_latency(1)
        assert with_mac == base + FrontendTimings().sha3_latency

    def test_for_config_uses_dram(self):
        cfg = OramConfig(num_blocks=2**20, block_bytes=64)
        one = OramTimingModel.for_config(cfg, DramConfig(channels=1))
        four = OramTimingModel.for_config(cfg, DramConfig(channels=4))
        assert one.tree_latency_cycles > four.tree_latency_cycles

    def test_for_recursive_averages(self):
        cfgs = [OramConfig(num_blocks=2**16), OramConfig(num_blocks=2**10)]
        model = OramTimingModel.for_recursive(cfgs)
        each = [
            OramTimingModel.for_config(c).tree_latency_cycles for c in cfgs
        ]
        assert model.tree_latency_cycles == pytest.approx(sum(each) / 2, rel=0.05)


class TestReplay:
    def test_insecure_cycles(self):
        trace = tiny_trace()
        result = insecure_cycles(trace)
        proc = ProcessorConfig()
        assert result.cycles == base_cycles(trace, proc) + len(trace.events) * 58
        assert result.scheme == "insecure"

    def test_replay_counts_events(self):
        from repro.presets import pc_x32
        from repro.utils.rng import DeterministicRng

        trace = tiny_trace()
        frontend = pc_x32(num_blocks=2**10, rng=DeterministicRng(1), onchip_entries=16)
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        result = replay_trace(frontend, trace, timing, scheme="PC_X32")
        assert result.oram_accesses == len(trace.events)
        assert result.cycles > insecure_cycles(trace).cycles
        assert result.tree_accesses >= result.oram_accesses

    def test_slowdown_vs(self):
        a = SimResult("b", "x", cycles=200.0, instructions=1, llc_misses=1,
                      oram_accesses=1, tree_accesses=1)
        b = SimResult("b", "insecure", cycles=100.0, instructions=1, llc_misses=1,
                      oram_accesses=1, tree_accesses=0)
        assert a.slowdown_vs(b) == 2.0

    def test_bytes_properties(self):
        r = SimResult("b", "x", 1.0, 1, 1, oram_accesses=4, tree_accesses=8,
                      data_bytes=3000, posmap_bytes=1000)
        assert r.total_bytes == 4000
        assert r.bytes_per_access == 1000.0
        assert r.posmap_byte_fraction == 0.25

    def test_block_size_probe_single_config(self):
        """Frontends exposing `config` are probed without touching `configs`."""
        from repro.presets import pc_x32
        from repro.utils.rng import DeterministicRng

        frontend = pc_x32(num_blocks=2**10, rng=DeterministicRng(1),
                          onchip_entries=16)
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        result = replay_trace(frontend, tiny_trace(), timing)
        assert result.oram_accesses > 0

    def test_block_size_probe_recursive_configs(self):
        from repro.presets import r_x8
        from repro.utils.rng import DeterministicRng

        frontend = r_x8(num_blocks=2**10, rng=DeterministicRng(1),
                        onchip_entries=16)
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        result = replay_trace(frontend, tiny_trace(), timing)
        assert result.oram_accesses > 0

    def test_block_size_probe_rejects_configless_frontend(self):
        class NoConfig:
            pass

        timing = OramTimingModel(tree_latency_cycles=1000.0)
        with pytest.raises(TypeError, match="neither 'config' nor 'configs'"):
            replay_trace(NoConfig(), tiny_trace(), timing)

    def test_block_size_probe_rejects_empty_configs(self):
        class EmptyConfigs:
            configs = []

        timing = OramTimingModel(tree_latency_cycles=1000.0)
        with pytest.raises(TypeError, match="neither 'config' nor 'configs'"):
            replay_trace(EmptyConfigs(), tiny_trace(), timing)


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return SimulationRunner(misses_per_benchmark=300)

    def test_trace_cached(self, runner):
        t1 = runner.trace("gob")
        t2 = runner.trace("gob")
        assert t1 is t2

    def test_trace_respects_budget(self, runner):
        assert runner.trace("gob").llc_misses <= 300

    def test_run_one_schemes(self, runner):
        r = runner.run_one("PC_X32", "gob")
        assert r.scheme == "PC_X32"
        assert r.oram_accesses > 0

    def test_recursive_runs(self, runner):
        r = runner.run_one("R_X8", "gob")
        assert r.posmap_bytes > 0

    def test_slowdown_ordering(self, runner):
        """PC beats R on a cache-friendly benchmark, both lose to insecure."""
        base = runner.run_insecure("gob")
        r = runner.run_one("R_X8", "gob")
        pc = runner.run_one("PC_X32", "gob")
        assert r.cycles > base.cycles
        assert pc.cycles > base.cycles
        assert pc.cycles < r.cycles

    def test_suite_and_table(self, runner):
        results = runner.run_suite(["PC_X32"], ["gob"])
        baselines = runner.baselines(["gob"])
        table = slowdown_table(results, baselines, ["PC_X32"])
        assert "geomean" in table["PC_X32"]
        text = format_table(table, ["gob"], title="t")
        assert "PC_X32" in text and "gob" in text
