"""AES-128 correctness: FIPS-197 vectors, roundtrips, structural checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128


class TestFipsVectors:
    """Known-answer tests from FIPS-197 and NIST SP 800-38A."""

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_sp80038a_ecb_block1(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_known_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES128(key).decrypt_block(ciphertext) == expected


class TestStructure:
    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_wrong_block_size_rejected(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"tiny")
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(17))

    def test_deterministic(self):
        cipher = AES128(bytes(16))
        block = bytes(range(16))
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_different_keys_differ(self):
        block = bytes(16)
        assert AES128(bytes(16)).encrypt_block(block) != AES128(
            bytes([1] * 16)
        ).encrypt_block(block)

    def test_avalanche(self):
        """Flipping one plaintext bit should change ~half the output bits."""
        cipher = AES128(bytes(range(16)))
        a = cipher.encrypt_block(bytes(16))
        flipped = bytes([1] + [0] * 15)
        b = cipher.encrypt_block(flipped)
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 40 <= diff <= 88


class TestRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_decrypt_encrypt_identity(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
