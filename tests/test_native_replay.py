"""The compiled replay core: bit-identity, dispatch policy, hardening.

Four layers of coverage for ``repro.sim.native._replay_core``:

- **Pipeline lockstep** — compiled vs batched replay per batch across
  scheme x storage combos (columnar combos engage the C drain/evict,
  object combos only the C driver loop), same bar as the PR-4/PR-5
  differential harnesses: SimResult, ``repr(cycles)``, stats image and
  tree digests all equal.
- **Backend lockstep** — a native-enabled columnar backend against the
  scalar columnar reference, stash snapshot + full tree records after
  every access, including stash-pressure (Z=2) traces that force the
  leftover-pool slow path and READRMV/APPEND mixes.
- **Error-path identity** — the C kernel raises the byte-identical
  ``ValueError`` messages (duplicate block, out-of-range leaf) and the
  transactional rollback leaves both backends in equal, usable state.
- **Dispatch policy** — ``REPRO_NATIVE`` off-values, the fallback
  ``RuntimeWarning`` (naming the build command), and ``require`` mode
  escalating to :class:`~repro.errors.NativeKernelUnavailable`.

Tests that need the built extension skip when it is absent; the CI
compiled lane builds it and runs this file under ``REPRO_NATIVE=require``
so a silently-unbuilt extension cannot hide behind the skips there.
"""

import warnings
from array import array

import pytest

import repro.sim.native as native_pkg
from repro.backend.columnar import ColumnarPathOramBackend
from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.errors import IntegrityViolationError, NativeKernelUnavailable
from repro.presets import build_frontend
from repro.sim.engine import ReplayEngine
from repro.sim.native import NATIVE_ENV, load_native_core, native_policy
from repro.sim.replay import resolve_replay_mode, translate_block_addrs
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.storage.block import Block
from repro.storage.columnar import ColumnarTreeStorage
from repro.storage.snapshot import tree_digest, tree_records
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng

from test_replay_differential import (
    BLOCKS,
    chunked,
    frontend_digests,
    make_trace,
    stats_image,
)

CORE = load_native_core()
needs_core = pytest.mark.skipif(
    CORE is None,
    reason="compiled core not built (python setup.py build_ext --inplace)",
)


def native_pair(config: OramConfig, seed: int = 7):
    """Scalar-reference and native-enabled columnar backends, same seeds."""
    ref = ColumnarPathOramBackend(
        config, ColumnarTreeStorage(config), DeterministicRng(seed)
    )
    nat = ColumnarPathOramBackend(
        config, ColumnarTreeStorage(config), DeterministicRng(seed)
    )
    nat.enable_native_kernel(CORE)
    return ref, nat


SMALL = OramConfig(num_blocks=256, block_bytes=32)
PRESSURE_Z2 = OramConfig(num_blocks=256, block_bytes=16, blocks_per_bucket=2)


# ---------------------------------------------------------------------------
# Pipeline lockstep (compiled vs batched through the public replay API)
# ---------------------------------------------------------------------------


@needs_core
class TestCompiledPipelineLockstep:
    #: Columnar combos engage drain/evict in C; object combos only the
    #: C access driver + accumulate — both must be invisible.
    COMBOS = [
        ("PI_X8", "columnar"),
        ("PIC_X32", "columnar"),
        ("PC_X32", "columnar"),
        ("P_X16", "object"),
    ]

    @pytest.mark.parametrize("scheme,storage", COMBOS)
    @pytest.mark.parametrize("seed", (8, 2015))
    def test_compiled_is_bit_identical_per_batch(self, scheme, storage, seed):
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        batched_fe = build_frontend(
            scheme, num_blocks=BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        compiled_fe = build_frontend(
            scheme, num_blocks=BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        trace = make_trace(seed, events=600)
        for index, chunk in enumerate(chunked(trace, batch=150)):
            batched = replay_trace(
                batched_fe, chunk, timing, scheme=scheme, mode="batched"
            )
            compiled = replay_trace(
                compiled_fe, chunk, timing, scheme=scheme, mode="compiled"
            )
            context = f"{scheme}/{storage} seed={seed} batch={index}"
            assert batched == compiled, context
            assert repr(batched.cycles) == repr(compiled.cycles), context
            assert stats_image(batched_fe) == stats_image(compiled_fe), context
            assert frontend_digests(batched_fe) == frontend_digests(
                compiled_fe
            ), context

    def test_recursive_scheme_compiled(self):
        """Recursive frontends (per-level object backends) under the C
        driver loop: only the engine stages compile, outcomes identical."""
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        results = {}
        for mode in ("batched", "compiled"):
            fe = build_frontend("R_X8", num_blocks=BLOCKS, rng=DeterministicRng(7))
            results[mode] = (
                replay_trace(
                    fe, make_trace(11, events=500), timing,
                    scheme="R_X8", mode=mode,
                ),
                frontend_digests(fe),
            )
        assert results["compiled"] == results["batched"]


# ---------------------------------------------------------------------------
# Backend lockstep (native drain/evict vs the scalar columnar reference)
# ---------------------------------------------------------------------------


@needs_core
class TestNativeBackendLockstep:
    def drive(self, config, steps, seed, with_removal=False):
        """Random ops against both backends; compare after every access."""
        ref, nat = native_pair(config, seed=seed)
        rng = DeterministicRng(seed * 31 + 5)
        posmap = {}
        removed_ref, removed_nat = {}, {}
        num_addrs = config.num_blocks // 4
        for index in range(steps):
            roll = rng.random()
            if with_removal and removed_ref and roll < 0.2:
                addr = sorted(removed_ref)[rng.randrange(len(removed_ref))]
                block = removed_ref.pop(addr)
                ref.access(Op.APPEND, addr, append_block=block)
                nat.access(Op.APPEND, addr, append_block=removed_nat.pop(addr))
                # The PosMap still maps the address to the leaf assigned
                # at removal time (the PLB's bookkeeping).
                posmap[addr] = block.leaf
            else:
                addr = rng.randrange(num_addrs)
                while addr in removed_ref:
                    addr = rng.randrange(num_addrs)
                leaf = posmap.get(addr, 0)
                new_leaf = rng.random_leaf(config.levels)
                if with_removal and roll > 0.85:
                    a = ref.access(Op.READRMV, addr, leaf, new_leaf)
                    b = nat.access(Op.READRMV, addr, leaf, new_leaf)
                    removed_ref[addr], removed_nat[addr] = a, b
                    posmap.pop(addr, None)
                elif roll < 0.5:
                    payload = bytes([rng.randrange(256)]) * config.block_bytes

                    def update(block, payload=payload):
                        block.data = payload

                    ref.access(Op.WRITE, addr, leaf, new_leaf, update=update)
                    nat.access(Op.WRITE, addr, leaf, new_leaf, update=update)
                    posmap[addr] = new_leaf
                else:
                    ref.access(Op.READ, addr, leaf, new_leaf)
                    nat.access(Op.READ, addr, leaf, new_leaf)
                    posmap[addr] = new_leaf
            assert ref.stash_snapshot() == nat.stash_snapshot(), index
        assert tree_records(ref.storage) == tree_records(nat.storage)

    @pytest.mark.parametrize("seed", (1, 9, 40))
    def test_randomized_traces(self, seed):
        self.drive(SMALL, steps=200, seed=seed)

    @pytest.mark.parametrize("seed", (2, 17))
    def test_stash_pressure_forces_slow_path_rebuild(self, seed):
        """Z=2 leaves placement leftovers, exercising the C pool return
        and the shared merge-order stash rebuild."""
        self.drive(PRESSURE_Z2, steps=250, seed=seed)

    @pytest.mark.parametrize("seed", (3, 23))
    def test_removal_and_append_mix(self, seed):
        self.drive(SMALL, steps=220, seed=seed, with_removal=True)


# ---------------------------------------------------------------------------
# Error-path identity (C messages + transactional rollback)
# ---------------------------------------------------------------------------


@needs_core
class TestErrorPathIdentity:
    def test_out_of_range_leaf_message_and_rollback_identical(self):
        ref, nat = native_pair(SMALL)
        messages = []
        for backend in (ref, nat):
            backend.access(
                Op.APPEND,
                3,
                append_block=Block(3, SMALL.num_leaves * 2, bytes(32), None),
            )
            with pytest.raises(ValueError, match="out of range") as err:
                backend.access(Op.READ, 8, 0, 1)
            messages.append(str(err.value))
        assert messages[0] == messages[1]
        assert ref.stash_snapshot() == nat.stash_snapshot()
        assert tree_records(ref.storage) == tree_records(nat.storage)

    def test_duplicate_block_in_drained_bucket_identical(self):
        """A stash/tree duplicate detected *inside the C drain* raises the
        byte-identical message the scalar loop raises."""
        ref, nat = native_pair(SMALL)
        messages = []
        for backend in (ref, nat):
            backend.access(
                Op.APPEND, 5, append_block=Block(5, 1, bytes(32), None)
            )
            # Evict block 5 out of the stash into the tree...
            backend.access(Op.READ, 9, 0, 2)
            # ...then plant a second copy in the stash and walk a path
            # that drains the first: the drain must flag the duplicate.
            backend.access(
                Op.APPEND, 5, append_block=Block(5, 1, bytes(32), None)
            )
            with pytest.raises(ValueError, match="duplicate block") as err:
                backend.access(Op.READ, 7, 1, 0)
            messages.append(str(err.value))
        assert messages[0] == messages[1]
        assert ref.stash_snapshot() == nat.stash_snapshot()
        assert tree_records(ref.storage) == tree_records(nat.storage)

    def test_failing_update_restores_identically(self):
        ref, nat = native_pair(SMALL)
        posmap = {}
        rng = DeterministicRng(6)
        for _ in range(40):
            addr = rng.randrange(64)
            leaf = posmap.get(addr, 0)
            new_leaf = rng.random_leaf(SMALL.levels)
            ref.access(Op.READ, addr, leaf, new_leaf)
            nat.access(Op.READ, addr, leaf, new_leaf)
            posmap[addr] = new_leaf

        def failing(block):
            block.data = b"\xEE" * SMALL.block_bytes
            raise IntegrityViolationError("injected")

        addr = next(iter(posmap))
        for backend in (ref, nat):
            with pytest.raises(IntegrityViolationError):
                backend.access(
                    Op.WRITE, addr, posmap[addr], 3, update=failing
                )
        assert ref.stash_snapshot() == nat.stash_snapshot()
        assert tree_digest(ref.storage) == tree_digest(nat.storage)
        # Both stay usable after the rollback.
        for backend in (ref, nat):
            backend.access(Op.READ, addr, posmap[addr], 5)
        assert tree_digest(ref.storage) == tree_digest(nat.storage)


# ---------------------------------------------------------------------------
# Kernel primitives (direct C calls against the Python reference)
# ---------------------------------------------------------------------------


@needs_core
class TestKernelPrimitives:
    @pytest.mark.parametrize("lpb", (1, 2, 8, 3, 7))
    def test_translate_matches_python(self, lpb):
        addrs = [0, 1, 5, 63, 64, 1023, 2**40 + 17]
        expect = [a // lpb for a in addrs]
        assert CORE.translate_block_addrs(addrs, lpb) == expect
        assert CORE.translate_block_addrs(array("q", addrs), lpb) == expect
        assert translate_block_addrs(addrs, lpb) == expect

    @pytest.mark.parametrize("bad", (0, -1, -8))
    def test_translate_guard_message_identical(self, bad):
        with pytest.raises(ValueError) as c_err:
            CORE.translate_block_addrs([1, 2], bad)
        with pytest.raises(ValueError) as py_err:
            translate_block_addrs([1, 2], bad)
        assert str(c_err.value) == str(py_err.value)
        assert f"got {bad}" in str(c_err.value)

    def test_accumulate_is_the_event_ordered_left_fold(self):
        latencies = [0.1 * k + 3.7 for k in range(200)]
        total = 12.5
        for lat in latencies:
            total += lat
        assert repr(CORE.accumulate(12.5, latencies)) == repr(total)
        # Operand-type fidelity off the float fast path.
        assert CORE.accumulate(0, [1, 2.5]) == 3.5
        assert CORE.accumulate(0.0, []) == 0.0

    def test_run_access_loop_op_selection_and_zip(self):
        calls = []

        class FakeResult:
            def __init__(self, n):
                self.tree_accesses = n

        def access(addr, op, payload=None):
            calls.append((addr, op, payload))
            return FakeResult(addr * 10)

        ns = CORE.run_access_loop(
            access, [4, 7, 9], [True, False], Op.READ, Op.WRITE, b"pp"
        )
        # zip semantics: stops at the shorter column.
        assert ns == [40, 70]
        assert calls == [(4, Op.WRITE, b"pp"), (7, Op.READ, None)]

    def test_run_access_loop_propagates_access_errors(self):
        def access(addr, op, payload=None):
            raise RuntimeError("backend exploded")

        with pytest.raises(RuntimeError, match="backend exploded"):
            CORE.run_access_loop(
                access, [1], [False], Op.READ, Op.WRITE, b""
            )

    def test_place_greedy_matches_python_reference(self):
        rng = DeterministicRng(13)
        for trial in range(20):
            levels = rng.randrange(3) + 2
            cap = rng.randrange(3) + 1
            path = [
                [rng.randrange(1000) for _ in range(rng.randrange(cap + 1))]
                for _ in range(levels + 1)
            ]
            by_depth = [
                [rng.randrange(1000) for _ in range(rng.randrange(4))]
                for _ in range(levels + 1)
            ]
            # Python reference: deepest first, candidates LIFO then pool
            # LIFO, scratch lists left empty (the scalar loop verbatim).
            ref_path = [list(b) for b in path]
            ref_depth = [list(c) for c in by_depth]
            ref_pool = []
            for level in range(levels, -1, -1):
                candidates = ref_depth[level]
                slots = ref_path[level]
                del slots[:]
                if not (candidates or ref_pool):
                    continue
                free = cap
                while free > 0 and candidates:
                    slots.append(candidates.pop())
                    free -= 1
                if candidates:
                    ref_pool.extend(candidates)
                    candidates.clear()
                while free > 0 and ref_pool:
                    slots.append(ref_pool.pop())
                    free -= 1
            pool = CORE.place_greedy(path, by_depth, levels, cap)
            assert path == ref_path, trial
            assert pool == ref_pool, trial
            assert all(not c for c in by_depth), trial


# ---------------------------------------------------------------------------
# Dispatch policy (REPRO_NATIVE / fallback / require)
# ---------------------------------------------------------------------------


class TestDispatchPolicy:
    @pytest.mark.parametrize(
        "value", ("0", "off", "no", "false", "disable", "disabled", " OFF ")
    )
    def test_off_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(NATIVE_ENV, value)
        assert native_policy() == "off"
        assert load_native_core() is None

    def test_policy_defaults_on(self, monkeypatch):
        monkeypatch.delenv(NATIVE_ENV, raising=False)
        assert native_policy() == "on"
        monkeypatch.setenv(NATIVE_ENV, "require")
        assert native_policy() == "require"

    def test_unbuilt_compiled_falls_back_with_warning(self, monkeypatch):
        """``mode=compiled`` without the extension degrades to batched
        loudly, and the warning names the build command."""
        monkeypatch.delenv(NATIVE_ENV, raising=False)
        monkeypatch.setattr(native_pkg, "_CORE_CACHE", [None])
        with pytest.warns(RuntimeWarning, match="build_ext --inplace"):
            assert resolve_replay_mode("compiled") == "batched"

    def test_off_policy_falls_back_even_when_built(self, monkeypatch):
        monkeypatch.setenv(NATIVE_ENV, "off")
        with pytest.warns(RuntimeWarning):
            assert resolve_replay_mode("compiled") == "batched"

    def test_require_mode_raises_when_unbuilt(self, monkeypatch):
        monkeypatch.setenv(NATIVE_ENV, "require")
        monkeypatch.setattr(native_pkg, "_CORE_CACHE", [None])
        with pytest.raises(NativeKernelUnavailable, match="REPRO_NATIVE"):
            resolve_replay_mode("compiled")

    def test_fallback_replay_matches_batched(self, monkeypatch):
        """End to end: a fallback compiled run is the batched run."""
        monkeypatch.delenv(NATIVE_ENV, raising=False)  # pin policy "on"
        monkeypatch.setattr(native_pkg, "_CORE_CACHE", [None])
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        results = {}
        for mode in ("batched", "compiled"):
            fe = build_frontend("PI_X8", num_blocks=BLOCKS, rng=DeterministicRng(7))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results[mode] = (
                    replay_trace(
                        fe, make_trace(2, events=300), timing,
                        scheme="PI_X8", mode=mode,
                    ),
                    frontend_digests(fe),
                )
        assert results["compiled"] == results["batched"]

    @needs_core
    def test_env_selects_compiled(self, monkeypatch):
        monkeypatch.delenv(NATIVE_ENV, raising=False)
        monkeypatch.setenv("REPRO_REPLAY", "compiled")
        assert resolve_replay_mode(None) == "compiled"


# ---------------------------------------------------------------------------
# Engine hookup
# ---------------------------------------------------------------------------


@needs_core
class TestEngineHookup:
    def test_enable_native_none_is_noop(self):
        fe = build_frontend("PI_X8", num_blocks=BLOCKS, rng=DeterministicRng(7))
        engine = ReplayEngine(fe, OramTimingModel(tree_latency_cycles=1000.0))
        engine.enable_native(None)
        assert engine._native is None

    def test_enable_native_reaches_columnar_backend(self):
        fe = build_frontend(
            "PI_X8", num_blocks=BLOCKS, rng=DeterministicRng(7),
            storage="columnar",
        )
        engine = ReplayEngine(fe, OramTimingModel(tree_latency_cycles=1000.0))
        engine.enable_native(CORE)
        assert engine._native is CORE
        assert fe.backend._native is CORE

    def test_enable_native_tolerates_object_backends(self):
        """Recursive frontends carry object backends with no native
        kernel hook; the engine still compiles its own stages."""
        fe = build_frontend("R_X8", num_blocks=BLOCKS, rng=DeterministicRng(7))
        engine = ReplayEngine(fe, OramTimingModel(tree_latency_cycles=1000.0))
        engine.enable_native(CORE)
        assert engine._native is CORE


# ---------------------------------------------------------------------------
# Restore-path hardening (the narrowed except blocks, both backends)
# ---------------------------------------------------------------------------


def hardened_pair():
    config = SMALL
    obj = PathOramBackend(config, TreeStorage(config), DeterministicRng(3))
    col = ColumnarPathOramBackend(
        config, ColumnarTreeStorage(config), DeterministicRng(3)
    )
    return obj, col


class TestRestoreHardening:
    def warm(self, backend, accesses=30):
        posmap = {}
        rng = DeterministicRng(8)
        for _ in range(accesses):
            addr = rng.randrange(64)
            new_leaf = rng.random_leaf(SMALL.levels)
            backend.access(Op.READ, addr, posmap.get(addr, 0), new_leaf)
            posmap[addr] = new_leaf
        return posmap

    def test_keyboard_interrupt_rolls_back(self):
        """The old ``except Exception`` skipped restoration for
        BaseException-only errors; an interrupt mid-update must now roll
        back instead of leaving a half-mutated tree."""
        for backend in hardened_pair():
            posmap = self.warm(backend)
            addr = next(iter(posmap))
            before = (backend.stash_snapshot(), tree_records(backend.storage))

            def interrupting(block):
                block.data = b"\xAA" * SMALL.block_bytes
                raise KeyboardInterrupt

            with pytest.raises(KeyboardInterrupt):
                backend.access(
                    Op.WRITE, addr, posmap[addr], 1, update=interrupting
                )
            assert (
                backend.stash_snapshot(), tree_records(backend.storage)
            ) == before
            # Still usable.
            backend.access(Op.READ, addr, posmap[addr], 2)

    def test_restore_failure_is_chained_not_masking(self, monkeypatch):
        """A restore failure of an expected kind rides along as a note on
        the original error instead of replacing it."""
        for backend in hardened_pair():
            posmap = self.warm(backend)
            addr = next(iter(posmap))

            def broken_restore(*args, **kwargs):
                raise ValueError("restore exploded")

            monkeypatch.setattr(backend, "_restore_on_error", broken_restore)

            def failing(block):
                raise IntegrityViolationError("original fault")

            with pytest.raises(IntegrityViolationError) as err:
                backend.access(Op.WRITE, addr, posmap[addr], 1, update=failing)
            notes = getattr(err.value, "__notes__", [])
            assert any("state restoration also failed" in n for n in notes)
            assert any("restore exploded" in n for n in notes)

    def test_unexpected_restore_error_propagates(self, monkeypatch):
        """Programming errors inside the restore path are not demoted to
        a note — they surface, with the original error as context."""
        for backend in hardened_pair():
            posmap = self.warm(backend)
            addr = next(iter(posmap))

            def buggy_restore(*args, **kwargs):
                raise ZeroDivisionError("restore bug")

            monkeypatch.setattr(backend, "_restore_on_error", buggy_restore)

            def failing(block):
                raise IntegrityViolationError("original fault")

            with pytest.raises(ZeroDivisionError) as err:
                backend.access(Op.WRITE, addr, posmap[addr], 1, update=failing)
            assert isinstance(err.value.__context__, IntegrityViolationError)
