"""SLO-driven overload control in the serving layer.

Covers the admission control plane added on top of the epoch scheduler:
earliest-deadline-first admission (proven bit-identical to the
historical FIFO order when no deadlines are configured), per-request
deadline accounting, per-tenant token-bucket quotas, the ``throttle``
backpressure policy, the graceful-degradation ladder, and the
``serve.deadline`` chaos site — with every mechanism shown deterministic
across the serial and asyncio drivers, and chaos runs shown
bit-identical to their fault-free goldens on all simulated quantities.
"""

import json

import pytest

from repro.faults import injected, parse
from repro.serve import (
    OramService,
    ServeConfig,
    TenantSpec,
    tenants_for,
)
from repro.sim.runner import SimulationRunner


def make_runner(seed: int = 17) -> SimulationRunner:
    return SimulationRunner(misses_per_benchmark=400, seed=seed)


def simulated_image(service: OramService):
    """Every simulated quantity in a run (wall-clock excluded)."""
    return (
        [
            (
                t.name, t.issued, t.completed, t.shed, t.deferred,
                t.throttled, t.missed, t.cycles,
            )
            for t in service.tenant_stats
        ],
        [
            (s.index, s.requests, s.batches, s.busy_cycles, s.access_digest)
            for s in service.shard_stats
        ],
        service.epochs,
    )


class TestEdfAdmission:
    def _service(self, admission: str, **tenant_kwargs) -> OramService:
        return OramService(
            tenants_for(
                ["hmmer", "gob"], 3, requests=90, **tenant_kwargs
            ),
            runner=make_runner(),
            config=ServeConfig(
                scheme="PC_X32", shards=2, burst=3, queue_capacity=5,
                admission=admission,
            ),
        )

    def test_edf_without_deadlines_is_bit_identical_to_fifo(self):
        edf = self._service("edf").run("serial")
        fifo = self._service("fifo").run("serial")
        assert simulated_image(edf) == simulated_image(fifo)

    def test_edf_actually_reorders_across_tenants(self):
        # Opposite-extreme deadlines on one shard: the urgent tenant's
        # offers must jump the queue, which is visible in the access
        # digest (the digest folds tenant indices in execution order).
        def service(admission: str) -> OramService:
            return OramService(
                [
                    TenantSpec(
                        name="lax", benchmark="hmmer", requests=60,
                        deadline_cycles=1e9,
                    ),
                    TenantSpec(
                        name="urgent", benchmark="gob", requests=60,
                        deadline_cycles=1e3,
                    ),
                ],
                runner=make_runner(),
                config=ServeConfig(scheme="PC_X32", admission=admission),
            )

        edf = service("edf").run("serial")
        fifo = service("fifo").run("serial")
        assert (
            edf.shard_stats[0].access_digest
            != fifo.shard_stats[0].access_digest
        )
        # Reordering is a scheduling change only: both orders complete
        # every request.
        for run in (edf, fifo):
            assert all(t.completed == 60 for t in run.tenant_stats)

    @pytest.mark.parametrize("mode", ["serial", "async"])
    def test_deadline_misses_are_deterministic(self, mode):
        service = self._service("edf", deadline_cycles=2000.0).run(mode)
        missed = sum(t.missed for t in service.tenant_stats)
        assert missed > 0  # the budget is far below realistic queue waits
        again = self._service("edf", deadline_cycles=2000.0).run(mode)
        assert simulated_image(service) == simulated_image(again)

    def test_serial_and_async_agree_under_deadlines(self):
        serial = self._service("edf", deadline_cycles=2000.0).run("serial")
        concurrent = self._service("edf", deadline_cycles=2000.0).run("async")
        assert simulated_image(serial) == simulated_image(concurrent)
        for a, b in zip(serial.tenant_stats, concurrent.tenant_stats):
            assert a.slack_cycles.to_dict() == b.slack_cycles.to_dict()

    def test_generous_deadlines_never_miss(self):
        service = self._service("edf", deadline_cycles=1e12).run("serial")
        assert sum(t.missed for t in service.tenant_stats) == 0
        # Slack was still recorded for every completed request.
        completed = sum(t.completed for t in service.tenant_stats)
        assert sum(t.slack_cycles.count for t in service.tenant_stats) == completed


class TestThrottleAndQuota:
    def test_throttle_policy_completes_everything(self):
        service = OramService(
            tenants_for(["hmmer"], 3, requests=50),
            runner=make_runner(),
            config=ServeConfig(
                burst=8, queue_capacity=4, policy="throttle",
                throttle_epochs=2,
            ),
        )
        service.run("serial")
        assert sum(t.throttled for t in service.tenant_stats) > 0
        for tenant in service.tenant_stats:
            assert tenant.completed == tenant.issued == 50
            assert tenant.shed == 0
        assert sum(s.throttled for s in service.shard_stats) == sum(
            t.throttled for t in service.tenant_stats
        )

    def test_quota_paces_tenants_without_dropping(self):
        service = OramService(
            tenants_for(["hmmer", "gob"], 2, requests=40, quota=2.0),
            runner=make_runner(),
            config=ServeConfig(burst=8),
        )
        service.run("serial")
        assert sum(t.throttled for t in service.tenant_stats) > 0
        for tenant in service.tenant_stats:
            assert tenant.completed == 40

    @pytest.mark.parametrize("mode", ["serial", "async"])
    def test_quota_and_throttle_deterministic_across_drivers(self, mode):
        def run(m: str) -> OramService:
            service = OramService(
                tenants_for(["hmmer", "gob"], 3, requests=40, quota=3.0),
                runner=make_runner(),
                config=ServeConfig(
                    burst=8, queue_capacity=4, policy="throttle",
                ),
            )
            return service.run(m)

        assert simulated_image(run(mode)) == simulated_image(run("serial"))


class TestGracefulDegradation:
    def _overloaded(self, **config_kwargs) -> OramService:
        return OramService(
            tenants_for(
                ["hmmer", "gob"], 3, requests=60, priorities=[0, 1, 1]
            ),
            runner=make_runner(),
            config=ServeConfig(
                burst=8, queue_capacity=4, policy="defer", **config_kwargs
            ),
        )

    def test_disabled_by_default_matches_pre_slo_behaviour(self):
        baseline = self._overloaded().run("serial")
        assert baseline.degradation.level == 0
        assert baseline.degradation.transitions == []
        assert all(t.shed == 0 for t in baseline.tenant_stats)

    def test_ladder_escalates_and_sheds_lowest_priority_first(self):
        service = self._overloaded(degrade_after=2, recover_after=2)
        service.run("serial")
        transitions = service.degradation.transitions
        assert transitions  # sustained overload must escalate
        assert transitions[0]["from"] == "normal"
        assert transitions[0]["to"] == "shed-low"
        # Under shed-low only the priority-0 tenant sheds; it must have
        # shed strictly first (tenant 0 is the only priority-0 tenant).
        assert service.tenant_stats[0].shed > 0
        # Every issued request is accounted: completed or shed.
        for tenant in service.tenant_stats:
            assert tenant.completed + tenant.shed == tenant.issued

    def test_transitions_deterministic_across_drivers(self):
        serial = self._overloaded(degrade_after=2).run("serial")
        concurrent = self._overloaded(degrade_after=2).run("async")
        assert serial.degradation.transitions == concurrent.degradation.transitions
        assert simulated_image(serial) == simulated_image(concurrent)


class TestServeResilienceReport:
    def test_report_block_shape(self):
        service = OramService(
            tenants_for(["hmmer"], 2, requests=30, deadline_cycles=2000.0),
            runner=make_runner(),
            config=ServeConfig(burst=8, queue_capacity=4, policy="throttle"),
        )
        service.run("serial")
        report = json.loads(json.dumps(service.report()))
        res = report["resilience"]
        for key in (
            "deadline_missed", "throttled", "shed", "deferred",
            "breaker_trips", "parked", "stall_epochs", "degradation",
        ):
            assert key in res
        assert res["degradation"]["level"] in (
            "normal", "shed-low", "best-effort"
        )
        assert isinstance(res["degradation"]["transitions"], list)
        assert res["throttled"] == report["totals"]["throttled"]
        assert res["deadline_missed"] == sum(
            t["deadline_missed"] for t in report["tenants"]
        )
        assert "slack_cycles" in report["tenants"][0]
        assert report["config"]["admission"] == "edf"


class TestServeDeadlineChaos:
    def _service(self) -> OramService:
        return OramService(
            tenants_for(["hmmer", "gob"], 3, requests=60, deadline_cycles=1e9),
            runner=make_runner(),
            config=ServeConfig(scheme="PC_X32", shards=2, burst=4),
        )

    def test_injected_pressure_is_pure_bookkeeping(self):
        # A serve.deadline stall tightens one epoch's deadlines; it must
        # provoke misses while leaving every simulated outcome — cycles,
        # digests, epochs — bit-identical to the fault-free golden.
        golden = self._service().run("serial")
        assert sum(t.missed for t in golden.tenant_stats) == 0
        chaotic = self._service()
        with injected("serve.deadline.stall@*#1|cycles=2000000000"):
            chaotic.run("serial")
        assert sum(t.missed for t in chaotic.tenant_stats) > 0
        for healed, clean in zip(chaotic.shard_stats, golden.shard_stats):
            assert healed.access_digest == clean.access_digest
            assert healed.busy_cycles == clean.busy_cycles
        for ht, ct in zip(chaotic.tenant_stats, golden.tenant_stats):
            assert ht.cycles == ct.cycles
            assert ht.completed == ct.completed
        assert chaotic.epochs == golden.epochs

    def test_chaos_identical_across_drivers(self):
        plan_text = "serve.deadline.stall@*#1|cycles=2000000000"
        serial = self._service()
        with injected(plan_text):
            serial.run("serial")
        concurrent = self._service()
        with injected(parse(plan_text)):
            concurrent.run("async")
        assert simulated_image(serial) == simulated_image(concurrent)

    def test_non_stall_actions_fire_normally(self):
        from repro.errors import InjectedFault

        service = self._service()
        with injected("serve.deadline.crash@0#1"):
            with pytest.raises(InjectedFault):
                service.run("serial")
