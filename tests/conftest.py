"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.eval.table_cache import FIGURE_CACHE_ENV
from repro.sim.result_cache import RESULT_CACHE_ENV
from repro.sim.trace_cache import CACHE_ENV
from repro.utils.rng import DeterministicRng


@pytest.fixture(autouse=True, scope="session")
def _hermetic_caches(tmp_path_factory):
    """Point the on-disk trace/result/figure caches at per-session temp dirs.

    Keeps tests from reading (or polluting) the developer's user-level
    caches while still exercising the disk-cache code paths. Mirrored in
    benchmarks/conftest.py, which is a separate conftest scope.
    """
    previous = {
        env: os.environ.get(env)
        for env in (CACHE_ENV, RESULT_CACHE_ENV, FIGURE_CACHE_ENV)
    }
    os.environ[CACHE_ENV] = str(tmp_path_factory.mktemp("trace-cache"))
    os.environ[RESULT_CACHE_ENV] = str(tmp_path_factory.mktemp("result-cache"))
    os.environ[FIGURE_CACHE_ENV] = str(tmp_path_factory.mktemp("figure-cache"))
    yield
    for env, value in previous.items():
        if value is None:
            os.environ.pop(env, None)
        else:
            os.environ[env] = value


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Guarantee no test leaves a process-wide fault plan installed."""
    from repro.faults import clear

    yield
    clear()


@pytest.fixture
def rng() -> DeterministicRng:
    """Deterministic RNG; tests that need different streams fork it."""
    return DeterministicRng(0xC0FFEE)


@pytest.fixture
def small_config() -> OramConfig:
    """Small tree for fast functional tests (256 blocks, 64 B)."""
    return OramConfig(num_blocks=256, block_bytes=64)


@pytest.fixture
def tiny_config() -> OramConfig:
    """Minimal tree (16 blocks) for exhaustive checks."""
    return OramConfig(num_blocks=16, block_bytes=32)


@pytest.fixture
def crypto() -> CryptoSuite:
    """Fast crypto suite with a fixed session key."""
    return CryptoSuite.fast(b"test-session-key")
