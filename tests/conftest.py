"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.utils.rng import DeterministicRng


@pytest.fixture
def rng() -> DeterministicRng:
    """Deterministic RNG; tests that need different streams fork it."""
    return DeterministicRng(0xC0FFEE)


@pytest.fixture
def small_config() -> OramConfig:
    """Small tree for fast functional tests (256 blocks, 64 B)."""
    return OramConfig(num_blocks=256, block_bytes=64)


@pytest.fixture
def tiny_config() -> OramConfig:
    """Minimal tree (16 blocks) for exhaustive checks."""
    return OramConfig(num_blocks=16, block_bytes=32)


@pytest.fixture
def crypto() -> CryptoSuite:
    """Fast crypto suite with a fixed session key."""
    return CryptoSuite.fast(b"test-session-key")
