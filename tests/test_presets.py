"""Scheme presets: geometry matches the paper's named configurations."""

import pytest

from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.presets import SCHEMES, build_frontend, phantom_4kb
from repro.utils.rng import DeterministicRng


class TestFactories:
    def test_r_x8_is_recursive(self):
        frontend = build_frontend("R_X8", num_blocks=2**12)
        assert isinstance(frontend, RecursiveFrontend)
        assert frontend.space.fanout == 8

    def test_p_x16(self):
        frontend = build_frontend("P_X16", num_blocks=2**12)
        assert isinstance(frontend, PlbFrontend)
        assert frontend.format.fanout == 16
        assert not frontend.pmmac

    def test_pc_x32(self):
        frontend = build_frontend("PC_X32", num_blocks=2**12)
        assert frontend.format.fanout == 32
        assert frontend.format.kind == "compressed"
        assert not frontend.pmmac

    def test_pi_x8(self):
        frontend = build_frontend("PI_X8", num_blocks=2**12)
        assert frontend.format.fanout == 8
        assert frontend.format.kind == "flat"
        assert frontend.pmmac

    def test_pic_x32(self):
        frontend = build_frontend("PIC_X32", num_blocks=2**12)
        assert frontend.format.fanout == 32
        assert frontend.pmmac

    def test_pc_x64_doubles_fanout(self):
        frontend = build_frontend("PC_X64", num_blocks=2**12)
        assert frontend.config.block_bytes == 128
        assert frontend.format.fanout == 64
        assert frontend.config.blocks_per_bucket == 3

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_frontend("QQQ")

    def test_schemes_tuple_complete(self):
        for scheme in SCHEMES:
            assert build_frontend(scheme, num_blocks=2**10) is not None


class TestPhantom:
    def test_no_recursion(self):
        frontend = phantom_4kb(num_blocks=2**8)
        assert frontend.posmap.entries == 2**8
        assert frontend.config.block_bytes == 4096

    def test_functional(self):
        frontend = phantom_4kb(num_blocks=2**6, rng=DeterministicRng(2))
        payload = b"\x55" * 4096
        frontend.write(3, payload)
        assert frontend.read(3) == payload


class TestCrossSchemeConsistency:
    def test_all_schemes_agree_on_contents(self):
        """Every scheme is a correct RAM: same op sequence, same answers."""
        rng_ops = DeterministicRng(77)
        ops = []
        for step in range(150):
            addr = rng_ops.randrange(2**10)
            write = rng_ops.random() < 0.5
            ops.append((addr, write, bytes([step % 256]) * 64))
        reference = None
        for scheme in SCHEMES:
            frontend = build_frontend(
                scheme, num_blocks=2**10, rng=DeterministicRng(5)
            )
            outputs = []
            for addr, write, payload in ops:
                if write:
                    frontend.write(addr, payload)
                else:
                    outputs.append((addr, frontend.read(addr)))
            if reference is None:
                reference = outputs
            else:
                assert outputs == reference, scheme
