"""Batched PRF leaf derivation: ``leaf_for_many`` vs scalar ``leaf_for``.

The batched spelling must be bit-identical to the equivalent scalar call
sequence — leaves, ``call_count``, ``cache_hits`` and the LRU state it
leaves behind — across cache-hit/miss mixes, empty/singleton batches,
disabled caches, eviction pressure and both PRF primitives.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf

KEY = b"batched-prf-key!"


def scalar_reference(prf: Prf, addrs, counts, levels, subblock=0):
    return [
        prf.leaf_for(addr, count, levels, subblock)
        for addr, count in zip(addrs, counts)
    ]


class TestLeafForMany:
    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=2**70),
            ),
            max_size=50,
        ),
        levels=st.integers(min_value=1, max_value=30),
        subblock=st.integers(min_value=0, max_value=7),
    )
    def test_matches_scalar_sequence(self, pairs, levels, subblock):
        addrs = [a for a, _ in pairs]
        counts = [c for _, c in pairs]
        batched_prf, scalar_prf = Prf(KEY), Prf(KEY)
        batched = batched_prf.leaf_for_many(addrs, counts, levels, subblock)
        scalar = scalar_reference(scalar_prf, addrs, counts, levels, subblock)
        assert batched == scalar
        assert batched_prf.call_count == scalar_prf.call_count
        assert batched_prf.cache_hits == scalar_prf.cache_hits
        assert batched_prf._leaf_cache == scalar_prf._leaf_cache
        assert list(batched_prf._leaf_cache) == list(scalar_prf._leaf_cache)

    def test_hit_miss_mix_accounting(self):
        """A batch straddling warm and cold keys accounts both exactly."""
        prf = Prf(KEY)
        prf.leaf_for(1, 0, 16)
        prf.leaf_for(2, 0, 16)  # warm two keys
        leaves = prf.leaf_for_many([1, 3, 2, 3, 1], [0, 0, 0, 0, 0], 16)
        # calls: 2 scalar + 5 batched; hits: keys 1, 2 warm, then 3 and 1
        # re-hit within the batch itself.
        assert prf.call_count == 7
        assert prf.cache_hits == 4
        assert leaves[0] == prf.leaf_for(1, 0, 16)
        assert leaves[1] == leaves[3]  # repeated (3, 0) pair

    def test_empty_batch(self):
        prf = Prf(KEY)
        assert prf.leaf_for_many([], [], 20) == []
        assert prf.call_count == 0 and prf.cache_hits == 0

    def test_singleton_batch(self):
        batched_prf, scalar_prf = Prf(KEY), Prf(KEY)
        assert batched_prf.leaf_for_many([9], [4], 20) == [
            scalar_prf.leaf_for(9, 4, 20)
        ]
        assert batched_prf.call_count == 1 and batched_prf.cache_hits == 0

    def test_degenerate_levels_bypasses_cache_and_counters(self):
        prf = Prf(KEY)
        assert prf.leaf_for_many([1, 2], [3, 4], 0) == [0, 0]
        assert prf.call_count == 0 and prf.cache_hits == 0
        assert not prf._leaf_cache

    def test_mismatched_batch_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            Prf(KEY).leaf_for_many([1, 2], [3], 16)

    def test_cache_disabled(self):
        cached, uncached = Prf(KEY), Prf(KEY, leaf_cache_entries=0)
        addrs = [5, 5, 6, 5]
        counts = [1, 1, 1, 1]
        assert cached.leaf_for_many(addrs, counts, 18) == uncached.leaf_for_many(
            addrs, counts, 18
        )
        assert uncached.cache_hits == 0
        assert cached.call_count == uncached.call_count == 4

    def test_eviction_pressure_matches_scalar(self):
        """Under a tiny LRU the eviction sequence stays scalar-identical."""
        batched_prf = Prf(KEY, leaf_cache_entries=3)
        scalar_prf = Prf(KEY, leaf_cache_entries=3)
        addrs = [1, 2, 3, 4, 1, 2, 5, 3, 1] * 3
        counts = [0] * len(addrs)
        batched = batched_prf.leaf_for_many(addrs, counts, 16)
        scalar = scalar_reference(scalar_prf, addrs, counts, 16)
        assert batched == scalar
        assert batched_prf.cache_hits == scalar_prf.cache_hits
        assert list(batched_prf._leaf_cache) == list(scalar_prf._leaf_cache)

    def test_aes_mode_matches_scalar(self):
        batched_prf = Prf(b"0123456789abcdef", mode=Prf.MODE_AES)
        scalar_prf = Prf(b"0123456789abcdef", mode=Prf.MODE_AES)
        addrs = [0, 1, 0, 2]
        counts = [0, 7, 0, 9]
        assert batched_prf.leaf_for_many(addrs, counts, 12) == scalar_reference(
            scalar_prf, addrs, counts, 12
        )
        assert batched_prf.call_count == scalar_prf.call_count
        assert batched_prf.cache_hits == scalar_prf.cache_hits

    def test_lru_refresh_within_batch(self):
        """A batch hit refreshes recency exactly like a scalar hit."""
        prf = Prf(KEY, leaf_cache_entries=2)
        prf.leaf_for_many([1, 2, 1, 3], [0, 0, 0, 0], 16)
        # (1,0) was refreshed by the third item, so (2,0) was evicted.
        assert (1, 0, 16, 0) in prf._leaf_cache
        assert (2, 0, 16, 0) not in prf._leaf_cache
        assert (3, 0, 16, 0) in prf._leaf_cache
