"""Compressed-PosMap group remaps end-to-end through the Frontend (§5.2.2)."""

import pytest

from repro.backend.ops import Op
from repro.frontend.unified import PlbFrontend
from repro.utils.rng import DeterministicRng


def make(beta=3, pmmac=False, num_blocks=2**9):
    return PlbFrontend(
        num_blocks=num_blocks,
        posmap_format="compressed",
        compressed_beta=beta,
        pmmac=pmmac,
        onchip_entries=2**3,
        plb_capacity_bytes=2 * 1024,
        rng=DeterministicRng(17),
    )


@pytest.mark.parametrize("pmmac", [False, True])
class TestGroupRemap:
    def test_hammering_triggers_group_remap(self, pmmac):
        """Repeated access to one block rolls its IC over."""
        frontend = make(beta=3, pmmac=pmmac)
        for _ in range(2 ** 3 + 2):
            frontend.read(5)
        assert frontend.stats.group_remaps >= 1

    def test_data_survives_group_remap(self, pmmac):
        """Sibling blocks must be relocated, not lost."""
        frontend = make(beta=3, pmmac=pmmac)
        fanout = frontend.format.fanout
        # Write distinct data to several blocks of one group (group 0).
        payloads = {}
        for j in range(0, min(fanout, 8)):
            payloads[j] = bytes([j + 1]) * 64
            frontend.write(j, payloads[j])
        # Hammer block 0 until the group remaps at least twice.
        for _ in range(2 ** 4 + 4):
            frontend.read(0)
        assert frontend.stats.group_remaps >= 1
        for j, payload in payloads.items():
            assert frontend.read(j) == payload

    def test_relocations_counted(self, pmmac):
        frontend = make(beta=3, pmmac=pmmac)
        for _ in range(2 ** 3 + 2):
            frontend.read(5)
        # All siblings except the accessed one get relocated (some may be
        # PLB-resident PosMap blocks, but at level 0 siblings are data).
        assert frontend.stats.group_relocations >= frontend.format.fanout // 2

    def test_interleaved_traffic_after_remap(self, pmmac):
        """The system keeps working normally after many group remaps."""
        frontend = make(beta=2, pmmac=pmmac)
        rng = DeterministicRng(71)
        shadow = {}
        for step in range(400):
            addr = rng.randrange(2**9)
            if rng.random() < 0.4:
                data = bytes([step % 256]) * 64
                frontend.write(addr, data)
                shadow[addr] = data
            else:
                assert frontend.read(addr) == shadow.get(addr, bytes(64))
        assert frontend.stats.group_remaps > 0


class TestRemapRate:
    def test_overhead_tracks_formula(self):
        """Worst-case relocation rate ~ (X-1)/2^beta (§5.3)."""
        beta = 4
        frontend = make(beta=beta)
        target = 3
        frontend.read(target)
        start = frontend.stats.group_relocations
        n = 600
        for _ in range(n):
            frontend.read(target)
        rate = (frontend.stats.group_relocations - start) / n
        expected = (frontend.format.fanout - 1) / (1 << beta)
        assert rate == pytest.approx(expected, rel=0.2)

    def test_no_group_remaps_with_flat_counters(self):
        frontend = PlbFrontend(
            num_blocks=2**9,
            posmap_format="flat",
            onchip_entries=2**3,
            rng=DeterministicRng(5),
        )
        for _ in range(200):
            frontend.read(5)
        assert frontend.stats.group_remaps == 0
